//! The closed-loop full-system simulator: cores ⇄ caches ⇄ controller(s) ⇄
//! DRAM, with stack accounting attached.

use dramstack_audit::{audit_channel, conserve, AuditHandle, AuditReport, MAX_RECORDED};
use dramstack_core::{
    through_time::{aggregate_bandwidth, aggregate_latency},
    BandwidthStack, LatencyHistogram, LatencyStack, StackSampler, TimeSample,
};
use dramstack_cpu::{CoreModel, CycleStack, Hierarchy, InstrStream, StallKind, VecStream};
use dramstack_dram::{Cycle, CycleView, SeededFault};
use dramstack_memctrl::{CompletedRead, CtrlSnapshot, MemoryController};
use dramstack_obs::{
    advisor::{diagnose, diagnose_channel_imbalance, WindowObservation},
    AdvisorConfig, Heartbeat, LogSink, PhaseTimers, Probe, SimPhase, TeeProbe,
};
use dramstack_workloads::SyntheticPattern;

use crate::config::{ConfigError, SystemConfig};
use crate::report::SimReport;
use crate::snapshot::{Snapshot, SnapshotDelta, SnapshotError, SNAPSHOT_FORMAT_VERSION};
use crate::telemetry::{Telemetry, TelemetryConfig};

/// The full-system simulator.
///
/// One or more memory channels sit behind the shared cache hierarchy;
/// consecutive cache lines interleave across channels and each channel
/// gets its own bandwidth/latency stack (aggregated in the report, as the
/// paper describes).
pub struct Simulator {
    cfg: SystemConfig,
    cores: Vec<CoreModel>,
    streams: Vec<Box<dyn InstrStream>>,
    hier: Hierarchy,
    ctrls: Vec<MemoryController>,
    views: Vec<CycleView>,
    samplers: Vec<StackSampler>,
    cycle_samples: Vec<CycleStack>,
    cycle_total: CycleStack,
    histogram: LatencyHistogram,
    dram_cycle: Cycle,
    next_cycle_sample: Cycle,
    timers: PhaseTimers,
    heartbeat: Option<Heartbeat>,
    /// Where progress lines (heartbeat) go; stderr by default, swappable
    /// so embedders and the live dashboard can capture or silence them.
    log_sink: LogSink,
    /// Streaming telemetry attached via
    /// [`enable_telemetry`](Self::enable_telemetry); observes completed
    /// sample windows as the run progresses.
    telemetry: Option<Telemetry>,
    /// System-level windows already handed to the telemetry layer.
    windows_published: usize,
    fast_forward: bool,
    /// Busy-path event engine: timing memoization, indexed scheduling,
    /// and event-horizon stepping under load (see
    /// [`set_busy_engine`](Self::set_busy_engine)).
    busy_engine: bool,
    /// The cycle the per-channel [`CycleView`]s were last built for, or
    /// `None` when they are stale (before the first tick, or after an
    /// idle fast-forward). The busy-path skip reuses the views for bulk
    /// accounting and must know they describe the immediately preceding
    /// cycle.
    views_valid_at: Option<Cycle>,
    /// Scratch: per-core stall classification for the current busy span.
    stall_kinds: Vec<StallKind>,
    /// Scratch: which cores were bulk-stalled this cycle (step fast path).
    core_skips: Vec<bool>,
    /// Busy-forward attempt throttle: after a full horizon scan fails, the
    /// next scan is deferred to this cycle (backoff doubles per miss, so a
    /// workload whose spans never materialize stops paying the scan).
    busy_attempt_after: Cycle,
    /// Current backoff length in cycles (0 after a successful span).
    busy_backoff: Cycle,
    /// Scratch buffer for draining controller completions without a
    /// per-cycle allocation.
    completion_buf: Vec<CompletedRead>,
    /// Per-channel shadow-auditor handles; `Some` while the auditor is
    /// armed (default in debug/test builds, off in release).
    audits: Vec<Option<AuditHandle>>,
    /// Delta-chain bookkeeping: what the previous checkpoint captured,
    /// set by [`snapshot_base`](Self::snapshot_base), advanced by every
    /// [`snapshot_delta`](Self::snapshot_delta), cleared by
    /// [`restore`](Self::restore). `None` until a base is taken.
    ckpt_marks: Option<CkptMarks>,
}

/// Bookkeeping for delta checkpoints: everything needed to decide what
/// changed since the previous checkpoint in the chain.
struct CkptMarks {
    /// Cycle the previous checkpoint was captured at (the `base_cycle`
    /// the next delta will be stamped with).
    last_cycle: Cycle,
    /// Sequence number of the next delta (1 right after the base).
    next_seq: u64,
    /// Per-channel controller state at the previous checkpoint, for the
    /// authoritative changed/unchanged comparison.
    ctrl_snaps: Vec<CtrlSnapshot>,
    /// Per-channel cheap activity signatures at the previous checkpoint
    /// (fast "definitely dirty" gate before the deep comparison).
    ctrl_sigs: Vec<u64>,
    /// Per-channel rolled-window counts at the previous checkpoint.
    sampler_lens: Vec<usize>,
    /// Rolled CPU cycle-window count at the previous checkpoint.
    cycle_samples_len: usize,
    /// Latency histogram at the previous checkpoint, the base the next
    /// delta's sparse per-bucket patch is computed against (64 buckets of
    /// `u64` — cheap to retain and compare).
    histogram: LatencyHistogram,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("n_cores", &self.cores.len())
            .field("channels", &self.ctrls.len())
            .field("dram_cycle", &self.dram_cycle)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds a simulator over arbitrary per-core instruction streams.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the configured core count
    /// or the configuration is invalid; use [`try_new`](Self::try_new)
    /// to handle user-supplied configurations gracefully.
    pub fn new(cfg: SystemConfig, streams: Vec<Box<dyn InstrStream>>) -> Self {
        Self::try_new(cfg, streams).expect("invalid simulator configuration")
    }

    /// Builds a simulator, returning a typed error instead of panicking
    /// when the configuration (or the stream count) is invalid.
    ///
    /// In debug/test builds the shadow protocol auditor is armed on every
    /// channel by default (see [`set_audit`](Self::set_audit)); release
    /// builds run unarmed and pay nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated constraint.
    pub fn try_new(
        cfg: SystemConfig,
        streams: Vec<Box<dyn InstrStream>>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if streams.len() != cfg.n_cores {
            return Err(ConfigError::StreamCount {
                expected: cfg.n_cores,
                got: streams.len(),
            });
        }
        let ctrls: Vec<MemoryController> = (0..cfg.channels)
            .map(|_| MemoryController::new(cfg.ctrl.clone()))
            .collect();
        let n_banks = ctrls[0].total_banks();
        let peak = cfg.ctrl.device.peak_bandwidth_gbps();
        let samplers = (0..cfg.channels)
            .map(|_| StackSampler::new(n_banks, peak, cfg.dram_cycle_ns(), cfg.sample_period))
            .collect();
        let mut sim = Simulator {
            cores: (0..cfg.n_cores)
                .map(|i| CoreModel::new(i, cfg.core))
                .collect(),
            hier: Hierarchy::new(cfg.n_cores, cfg.hierarchy),
            views: vec![CycleView::idle(n_banks); cfg.channels],
            samplers,
            cycle_samples: Vec::new(),
            cycle_total: CycleStack::new(),
            histogram: LatencyHistogram::new(),
            dram_cycle: 0,
            next_cycle_sample: cfg.sample_period,
            timers: PhaseTimers::new(),
            heartbeat: None,
            log_sink: LogSink::stderr(),
            telemetry: None,
            windows_published: 0,
            fast_forward: true,
            busy_engine: true,
            views_valid_at: None,
            stall_kinds: Vec::new(),
            core_skips: Vec::new(),
            busy_attempt_after: 0,
            busy_backoff: 0,
            completion_buf: Vec::new(),
            audits: vec![None; cfg.channels],
            ckpt_marks: None,
            streams,
            ctrls,
            cfg,
        };
        if cfg!(debug_assertions) {
            sim.set_audit(true);
        }
        Ok(sim)
    }

    /// Arms (or disarms) the shadow protocol auditor on every channel.
    ///
    /// Armed, an independent re-implementation of the JEDEC timing rules
    /// observes every issued DRAM command and every completed read; its
    /// findings land in [`SimReport::audit`]. The auditor is event-driven
    /// (idle fast-forwarding stays enabled) and purely observational —
    /// simulation results are bit-identical armed or not.
    ///
    /// Disarming detaches the audit probes; a user probe attached *after*
    /// arming (teed alongside the auditor) is dropped with them, so
    /// disarm before attaching probes you want to keep.
    pub fn set_audit(&mut self, on: bool) {
        for ch in 0..self.ctrls.len() {
            if on && self.audits[ch].is_none() {
                let (probe, handle) = audit_channel(&self.cfg.ctrl.device);
                if self.ctrls[ch].probe_attached() {
                    let user = self.ctrls[ch].take_probe();
                    self.ctrls[ch].attach_probe(Box::new(TeeProbe::new(user, Box::new(probe))));
                } else {
                    self.ctrls[ch].attach_probe(Box::new(probe));
                }
                self.audits[ch] = Some(handle);
            } else if !on && self.audits[ch].take().is_some() {
                let _ = self.ctrls[ch].take_probe();
            }
        }
    }

    /// Whether the shadow auditor is currently armed.
    pub fn audit_armed(&self) -> bool {
        self.audits.iter().any(Option::is_some)
    }

    /// Corrupts the *effective* timing enforcement of `channel`'s DRAM
    /// device, modeling a controller-bookkeeping bug (chaos/fault
    /// injection; see [`SeededFault`]). The scheduler stays internally
    /// consistent with the corrupted timing, so only the armed shadow
    /// auditor — which checks against the true specification — notices.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn inject_fault(&mut self, channel: usize, fault: SeededFault) {
        self.ctrls[channel].inject_fault(fault);
    }

    /// Enables or disables the idle-cycle fast-forward (on by default).
    ///
    /// Fast-forwarding never changes simulation results — reports are
    /// bit-identical either way (modulo `perf`, which records wall-clock
    /// time) — so the switch exists for benchmarking and for the
    /// determinism tests that prove that equivalence.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Enables or disables the busy-path event engine (on by default).
    ///
    /// The engine covers three coupled optimizations: per-bank timing
    /// memoization and the indexed FR-FCFS scan inside each controller,
    /// and the busy event-horizon skip here in the drive loop (which
    /// bulk-accounts spans where every core is parked on a stall and no
    /// DRAM command, completion, or refresh boundary can land). Like the
    /// idle fast-forward, it never changes simulation results — reports
    /// are bit-identical either way modulo `perf` — so the switch exists
    /// for benchmarking and for the determinism tests proving that.
    pub fn set_busy_engine(&mut self, on: bool) {
        self.busy_engine = on;
        for ctrl in &mut self.ctrls {
            ctrl.set_busy_engine(on);
        }
    }

    /// Whether the busy-path event engine is enabled.
    pub fn busy_engine(&self) -> bool {
        self.busy_engine
    }

    /// Turns on wall-clock self-profiling of the drive loop; the
    /// breakdown lands in [`SimReport::perf`]. Profiling reads only the
    /// host clock and never changes simulation results.
    pub fn enable_profiling(&mut self) {
        self.timers.enable();
    }

    /// Emits a progress line every `every_cycles` simulated cycles. Lines
    /// go to the configured [`LogSink`] (stderr unless
    /// [`set_log_sink`](Self::set_log_sink) routed them elsewhere).
    pub fn enable_heartbeat(&mut self, every_cycles: Cycle) {
        self.heartbeat = Some(Heartbeat::new(every_cycles));
    }

    /// Routes progress lines (heartbeat) through `sink` instead of the
    /// default stderr — e.g. into a capture buffer, a log file, or the
    /// live dashboard's message area.
    pub fn set_log_sink(&mut self, sink: LogSink) {
        self.log_sink = sink;
    }

    /// Attaches streaming telemetry with the default configuration and
    /// returns it for further setup (writers, sinks). Telemetry observes
    /// each completed sample window live; it never changes results.
    pub fn enable_telemetry(&mut self) -> &mut Telemetry {
        self.attach_telemetry(Telemetry::new(TelemetryConfig::default()))
    }

    /// Attaches a pre-configured [`Telemetry`] (replacing any existing
    /// one) and returns a mutable handle to it.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) -> &mut Telemetry {
        self.windows_published = 0;
        self.telemetry = Some(telemetry);
        self.telemetry.as_mut().expect("telemetry just attached")
    }

    /// The attached telemetry, if any (live series, advisor state,
    /// Prometheus snapshots on demand).
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Hands every system-level sample window completed since the last
    /// publication to the telemetry layer (aggregating across channels
    /// window-by-window, exactly like the report does).
    fn publish_windows(&mut self) {
        let Some(tel) = self.telemetry.as_mut() else {
            return;
        };
        let available = self
            .samplers
            .iter()
            .map(|s| s.samples().len())
            .min()
            .unwrap_or(0);
        while self.windows_published < available {
            let i = self.windows_published;
            if self.samplers.len() == 1 {
                tel.publish(&self.samplers[0].samples()[i]);
            } else {
                let one_window: Vec<&[TimeSample]> =
                    self.samplers.iter().map(|s| &s.samples()[i..=i]).collect();
                let agg = aggregate_channel_samples(&one_window);
                tel.publish(&agg[0]);
            }
            self.windows_published += 1;
        }
    }

    /// Attaches an observation probe (e.g. a
    /// [`ChromeTraceProbe`](dramstack_obs::ChromeTraceProbe)) to the
    /// controller of `channel`.
    ///
    /// If the shadow auditor is armed on that channel the probe is teed
    /// alongside it, so both observe every event.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn attach_probe(&mut self, channel: usize, probe: Box<dyn Probe>) {
        match &self.audits[channel] {
            Some(h) => {
                let tee = TeeProbe::new(probe, Box::new(h.probe()));
                self.ctrls[channel].attach_probe(Box::new(tee));
            }
            None => self.ctrls[channel].attach_probe(probe),
        }
    }

    /// Builds a simulator running the given synthetic pattern on every
    /// core (each core gets its own region and RNG stream).
    ///
    /// The LLC is functionally pre-warmed with the lines the streams
    /// "already" touched, so steady-state effects — notably dirty
    /// evictions turning stores into DRAM writes — are present from the
    /// first cycle instead of only after the 11 MB LLC fills.
    pub fn with_synthetic(cfg: SystemConfig, pattern: SyntheticPattern) -> Self {
        let n = cfg.n_cores;
        let streams: Vec<Box<dyn InstrStream>> = (0..n)
            .map(|c| Box::new(pattern.stream_for_core(c, n)) as Box<dyn InstrStream>)
            .collect();
        let mut sim = Self::new(cfg, streams);
        let llc_lines =
            sim.cfg.hierarchy.llc.size_bytes / u64::from(sim.cfg.hierarchy.llc.line_bytes);
        let per_core = llc_lines / n as u64;
        for core in 0..n {
            for (line, dirty) in pattern.warm_lines(core, per_core) {
                sim.hier.prefill_llc(line, dirty);
            }
        }
        sim.hier.reset_stats();
        sim
    }

    /// Builds a simulator replaying pre-generated traces (GAP kernels).
    ///
    /// # Panics
    ///
    /// Panics if the trace count differs from the core count.
    pub fn with_traces(cfg: SystemConfig, traces: Vec<Vec<dramstack_cpu::Instr>>) -> Self {
        let streams: Vec<Box<dyn InstrStream>> = traces
            .into_iter()
            .map(|t| Box::new(VecStream::new(t)) as Box<dyn InstrStream>)
            .collect();
        Self::new(cfg, streams)
    }

    /// Current DRAM cycle.
    pub fn now(&self) -> Cycle {
        self.dram_cycle
    }

    /// Whether every core finished its stream and the memory system
    /// drained.
    pub fn finished(&self) -> bool {
        self.cores.iter().all(CoreModel::is_finished)
            && self.hier.quiescent()
            && self.ctrls.iter().all(MemoryController::is_idle)
    }

    /// Which channel a line address belongs to.
    fn channel_of(&self, line: u64) -> usize {
        ((line >> 6) % self.cfg.channels as u64) as usize
    }

    /// Strips the channel bits out of a line address for the per-channel
    /// controller (which addresses only its own capacity).
    fn strip_channel(&self, line: u64) -> u64 {
        ((line >> 6) / self.cfg.channels as u64) << 6
    }

    /// Advances the system by one DRAM cycle.
    pub fn step(&mut self) {
        let now = self.dram_cycle;

        // 1. Memory controllers + DRAM + bandwidth-stack accounting.
        //    Phase timing chains through `mark` — one clock read per phase
        //    boundary instead of an end/begin pair.
        let t = self.timers.begin();
        for ch in 0..self.ctrls.len() {
            self.ctrls[ch].tick(now, &mut self.views[ch]);
            self.samplers[ch].account(&self.views[ch]);
        }
        self.views_valid_at = Some(now);
        let t = self.timers.mark(SimPhase::Ctrl, t);

        // 2. Completions propagate up: latency stack, cache fills, cores.
        //    `meta` carries the original (pre-strip) line address.
        let mut buf = std::mem::take(&mut self.completion_buf);
        for ch in 0..self.ctrls.len() {
            self.ctrls[ch].take_completions_into(&mut buf);
            for c in buf.drain(..) {
                self.samplers[ch].add_read(&c.breakdown);
                self.histogram.add(c.breakdown.total());
                if let Some(h) = &self.audits[ch] {
                    h.check_completion(&c);
                }
                let original_line = c.meta;
                for core in self.hier.complete_read(original_line) {
                    self.cores[core].complete_line(original_line);
                }
            }
        }
        self.completion_buf = buf;
        let t = self.timers.mark(SimPhase::Completions, t);

        // 3. Cores run `core_clock_mult` cycles per DRAM cycle. With the
        // busy engine on, a core whose stall horizon covers the whole
        // window accrues its stack cycles in one bulk add instead of
        // `mult` ticks; the rest tick in the usual lockstep order, which
        // is unchanged because a skipped core provably never touches the
        // shared hierarchy during the window.
        let mult = u64::from(self.cfg.core_clock_mult);
        let c0 = now * mult;
        if self.busy_engine && mult > 1 {
            let mut skips = std::mem::take(&mut self.core_skips);
            skips.clear();
            for core in &mut self.cores {
                skips.push(match core.stall_horizon(c0) {
                    Some((h, kind)) if h >= c0 + mult => {
                        core.add_stall_cycles(c0, mult, kind);
                        true
                    }
                    _ => false,
                });
            }
            for k in 0..mult {
                let core_now = c0 + k;
                let cores = self.cores.iter_mut().zip(&mut self.streams).zip(&skips);
                for ((core, stream), skip) in cores {
                    if !skip {
                        core.tick(stream.as_mut(), &mut self.hier, core_now);
                    }
                }
            }
            self.core_skips = skips;
        } else {
            for k in 0..mult {
                let core_now = c0 + k;
                for (core, stream) in self.cores.iter_mut().zip(&mut self.streams) {
                    core.tick(stream.as_mut(), &mut self.hier, core_now);
                }
            }
        }

        // 4. Barrier release: when every unfinished core is parked.
        self.release_barriers();
        let t = self.timers.mark(SimPhase::Cores, t);

        // 5. Pump hierarchy ⇄ controllers (head-of-line per direction).
        while let Some(r) = self.hier.pop_read() {
            let ch = self.channel_of(r.line);
            if self.ctrls[ch].can_accept_read() {
                let stripped = self.strip_channel(r.line);
                self.ctrls[ch].enqueue_read(stripped, r.line);
            } else {
                self.hier.unpop_read(r);
                break;
            }
        }
        while let Some(line) = self.hier.pop_write() {
            let ch = self.channel_of(line);
            if self.ctrls[ch].can_accept_write() {
                let stripped = self.strip_channel(line);
                self.ctrls[ch].enqueue_write(stripped);
            } else {
                self.hier.unpop_write(line);
                break;
            }
        }
        let t = self.timers.mark(SimPhase::Pump, t);

        // 6. Through-time CPU cycle-stack sampling.
        self.dram_cycle += 1;
        if self.dram_cycle == self.next_cycle_sample {
            self.next_cycle_sample += self.cfg.sample_period;
            let mut window = CycleStack::new();
            for core in &mut self.cores {
                window.merge(&core.take_stack_sample());
            }
            self.cycle_total.merge(&window);
            self.cycle_samples.push(window);
        }
        self.timers.mark(SimPhase::Sampling, t);

        if let Some(hb) = &mut self.heartbeat {
            // Summing per-controller counters every cycle is measurable at
            // heartbeat granularity; only pay for it on beat cycles.
            if hb.due(self.dram_cycle) {
                if let Some(line) = hb.tick(
                    self.dram_cycle,
                    self.ctrls.iter().map(|c| c.stats().reads_done).sum(),
                ) {
                    self.log_sink.line(&line);
                }
            }
        }

        if self.telemetry.is_some() {
            self.publish_windows();
        }
    }

    fn release_barriers(&mut self) {
        let mut waiting = 0;
        let mut active = 0;
        for core in &self.cores {
            if core.is_finished() {
                continue;
            }
            active += 1;
            if core.at_barrier().is_some() {
                waiting += 1;
            }
        }
        if active > 0 && waiting == active {
            for core in &mut self.cores {
                if core.at_barrier().is_some() {
                    core.release_barrier();
                }
            }
        }
    }

    /// Attempts to bulk-skip inert cycles, stopping before `limit`.
    ///
    /// The skip fires only when nothing observable can happen until a
    /// conservatively computed horizon: every core is quiet (finished and
    /// past any fetch stall), the cache hierarchy has no outstanding or
    /// outbound requests, and every memory controller is idle with its
    /// DRAM device settled — leaving the fixed-grid refresh as the only
    /// future event. The skipped span is accounted in bulk as pure idle
    /// (bit-identical to stepping it cycle by cycle, including sampling
    /// window rolls) and the simulator lands exactly on the earliest next
    /// event, which [`step`](Self::step) then handles normally.
    ///
    /// Returns true when at least one cycle was skipped.
    fn try_fast_forward(&mut self, limit: Cycle) -> bool {
        if !self.fast_forward {
            return false;
        }
        let now = self.dram_cycle;
        if limit <= now + 1 {
            return false;
        }
        let mult = u64::from(self.cfg.core_clock_mult);
        let core_now = now * mult;
        if !self.cores.iter().all(|c| c.is_quiet(core_now)) || !self.hier.quiescent() {
            return false;
        }
        let mut horizon = limit;
        for ctrl in &self.ctrls {
            match ctrl.next_event(now) {
                Some(h) => horizon = horizon.min(h),
                None => return false,
            }
        }
        if horizon <= now + 1 {
            return false;
        }
        let t = self.timers.begin();
        let skipped = horizon - now;
        // Skip [now, horizon) in chunks bounded by the CPU cycle-stack
        // sampling boundary so window rolls land exactly where per-cycle
        // stepping would put them.
        while self.dram_cycle < horizon {
            let chunk_end = horizon.min(self.next_cycle_sample);
            let n = chunk_end - self.dram_cycle;
            for s in &mut self.samplers {
                s.account_idle(n);
            }
            for core in &mut self.cores {
                core.add_idle_cycles(n * mult);
            }
            self.dram_cycle = chunk_end;
            if self.dram_cycle == self.next_cycle_sample {
                self.next_cycle_sample += self.cfg.sample_period;
                let mut window = CycleStack::new();
                for core in &mut self.cores {
                    window.merge(&core.take_stack_sample());
                }
                self.cycle_total.merge(&window);
                self.cycle_samples.push(window);
            }
        }
        self.timers.add_fast_forwarded(skipped);
        self.timers.end(SimPhase::FastForward, t);
        if let Some(hb) = &mut self.heartbeat {
            if hb.due(self.dram_cycle) {
                if let Some(line) = hb.tick(
                    self.dram_cycle,
                    self.ctrls.iter().map(|c| c.stats().reads_done).sum(),
                ) {
                    self.log_sink.line(&line);
                }
            }
        }
        if self.telemetry.is_some() {
            self.publish_windows();
        }
        true
    }

    /// Attempts to bulk-skip *busy* stall cycles, stopping before `limit`.
    ///
    /// The dual of [`try_fast_forward`](Self::try_fast_forward): instead
    /// of waiting for the whole system to go inert, this engages while
    /// requests are in flight — whenever every controller can prove via
    /// [`MemoryController::stall_horizon`] that no command issues, no
    /// completion lands, and no refresh boundary trips before some cycle
    /// `h`, every core is parked on a classifiable stall, and the
    /// hierarchy⇄controller pump is head-of-line blocked. Because every
    /// per-cycle observable is then constant over `[now, h)`, the span is
    /// replayed in bulk: the frozen [`CycleView`]s are re-accounted `n`
    /// times, controller queue attribution is applied via
    /// [`MemoryController::apply_stall_span`], and each core charges its
    /// stall classification for `n × core_clock_mult` cycles — all
    /// bit-identical to stepping cycle by cycle, including sampling
    /// window rolls.
    ///
    /// Returns true when at least one cycle was skipped.
    fn try_busy_forward(&mut self, limit: Cycle) -> bool {
        if !self.fast_forward || !self.busy_engine {
            return false;
        }
        let now = self.dram_cycle;
        if now == 0 || limit <= now {
            return false;
        }
        let last = now - 1;
        // The per-channel views must describe the immediately preceding
        // cycle: bulk accounting replays them verbatim.
        if self.views_valid_at != Some(last) {
            return false;
        }
        // Free disqualifiers first: a tick that issued a command (or has
        // an undelivered completion, or a refresh drain) can never head a
        // span, and costs nothing to detect — no backoff charged.
        if self.ctrls.iter().any(MemoryController::stall_blocked) {
            return false;
        }
        // Throttle the expensive horizon scans: a workload whose spans
        // keep failing to materialize backs off exponentially instead of
        // paying a full queue scan every cycle.
        if now < self.busy_attempt_after {
            return false;
        }
        // The pump must be head-of-line blocked in both directions;
        // otherwise a step would move a request into a controller queue.
        // (Queue occupancy is frozen over a stall span — no CAS retires
        // an entry, no completion drains in-flight — so "blocked now"
        // means "blocked for the whole span".)
        if let Some(r) = self.hier.peek_read() {
            if self.ctrls[self.channel_of(r.line)].can_accept_read() {
                return false;
            }
        }
        if let Some(line) = self.hier.peek_write() {
            if self.ctrls[self.channel_of(line)].can_accept_write() {
                return false;
            }
        }
        let mut miss = || {
            self.busy_backoff = (self.busy_backoff * 2).clamp(2, 8);
            self.busy_attempt_after = now + self.busy_backoff;
        };
        let mut horizon = limit;
        for ctrl in &self.ctrls {
            match ctrl.stall_horizon(last) {
                Some(h) => horizon = horizon.min(h),
                None => {
                    miss();
                    return false;
                }
            }
        }
        let mult = u64::from(self.cfg.core_clock_mult);
        let c0 = now * mult;
        let mut kinds = std::mem::take(&mut self.stall_kinds);
        kinds.clear();
        for core in &self.cores {
            match core.stall_horizon(c0) {
                Some((h_core, kind)) => {
                    // The core is stalled for core cycles [c0, h_core);
                    // convert to whole DRAM cycles of guaranteed stall.
                    let n_dram = (h_core - c0) / mult;
                    horizon = horizon.min(now.saturating_add(n_dram));
                    kinds.push(kind);
                }
                None => {
                    miss();
                    self.stall_kinds = kinds;
                    return false;
                }
            }
        }
        if horizon <= now {
            miss();
            self.stall_kinds = kinds;
            return false;
        }
        self.busy_backoff = 0;
        let t = self.timers.begin();
        let skipped = horizon - now;
        // Controller-side per-cycle stats (drain cycles, per-entry queue
        // attribution) are constant over the span; replay them in bulk.
        for ctrl in &mut self.ctrls {
            ctrl.apply_stall_span(last, skipped);
        }
        // Skip [now, horizon) in chunks bounded by the CPU cycle-stack
        // sampling boundary so window rolls land exactly where per-cycle
        // stepping would put them.
        let mut core_start = c0;
        while self.dram_cycle < horizon {
            let chunk_end = horizon.min(self.next_cycle_sample);
            let n = chunk_end - self.dram_cycle;
            for (s, v) in self.samplers.iter_mut().zip(&self.views) {
                s.account_span(v, n);
            }
            for (core, kind) in self.cores.iter_mut().zip(&kinds) {
                core.add_stall_cycles(core_start, n * mult, *kind);
            }
            core_start += n * mult;
            self.dram_cycle = chunk_end;
            if self.dram_cycle == self.next_cycle_sample {
                self.next_cycle_sample += self.cfg.sample_period;
                let mut window = CycleStack::new();
                for core in &mut self.cores {
                    window.merge(&core.take_stack_sample());
                }
                self.cycle_total.merge(&window);
                self.cycle_samples.push(window);
            }
        }
        self.stall_kinds = kinds;
        // The views still describe every cycle of the span, including the
        // one just before where we landed — consecutive busy spans chain.
        self.views_valid_at = Some(horizon - 1);
        self.timers.add_busy_forwarded(skipped);
        self.timers.end(SimPhase::BusyForward, t);
        if let Some(hb) = &mut self.heartbeat {
            if hb.due(self.dram_cycle) {
                if let Some(line) = hb.tick(
                    self.dram_cycle,
                    self.ctrls.iter().map(|c| c.stats().reads_done).sum(),
                ) {
                    self.log_sink.line(&line);
                }
            }
        }
        if self.telemetry.is_some() {
            self.publish_windows();
        }
        true
    }

    /// Runs for a fixed simulated duration (synthetic steady-state runs).
    pub fn run_for_us(&mut self, us: f64) -> SimReport {
        let cycles = self.cfg.us_to_cycles(us);
        let end = self.dram_cycle + cycles;
        self.advance_to_cycle(end);
        self.report()
    }

    /// Runs until every trace finishes (or `max_cycles` elapse).
    pub fn run_to_completion(&mut self, max_cycles: Cycle) -> SimReport {
        while !self.finished() && self.dram_cycle < max_cycles {
            if !self.try_fast_forward(max_cycles) && !self.try_busy_forward(max_cycles) {
                self.step();
            }
        }
        self.report()
    }

    /// Advances the simulation to absolute DRAM cycle `end` without
    /// building a report (the drive loop of [`run_for_us`](Self::run_for_us),
    /// exposed separately so checkpoint/resume flows can interleave
    /// snapshots with simulation). Composes with the idle and busy
    /// fast-forward paths exactly like the `run_*` drivers.
    pub fn advance_to_cycle(&mut self, end: Cycle) {
        while self.dram_cycle < end {
            if !self.try_fast_forward(end) && !self.try_busy_forward(end) {
                self.step();
            }
        }
    }

    /// Advances the simulation by `us` microseconds of DRAM time without
    /// building a report.
    pub fn advance_for_us(&mut self, us: f64) {
        let end = self.dram_cycle + self.cfg.us_to_cycles(us);
        self.advance_to_cycle(end);
    }

    /// Advances to absolute DRAM cycle `end`, invoking `on_checkpoint`
    /// with a fresh [`Snapshot`] at every multiple of `every` cycles
    /// crossed on the way (`every == 0` disables checkpointing). The
    /// fast-forward paths already clamp their horizons to the supplied
    /// limit, so checkpoint boundaries land exactly and never perturb
    /// results: a checkpointed run's report is bit-identical (modulo
    /// `perf`) to an uncheckpointed one.
    pub fn advance_checkpointed(
        &mut self,
        end: Cycle,
        every: Cycle,
        on_checkpoint: &mut dyn FnMut(&Snapshot),
    ) -> Result<(), SnapshotError> {
        if every == 0 {
            self.advance_to_cycle(end);
            return Ok(());
        }
        let mut next = (self.dram_cycle / every + 1) * every;
        while self.dram_cycle < end {
            self.advance_to_cycle(end.min(next));
            if self.dram_cycle == next {
                let snap = self.snapshot()?;
                on_checkpoint(&snap);
                next += every;
            }
        }
        Ok(())
    }

    /// [`run_for_us`](Self::run_for_us) with periodic checkpoints: the
    /// callback receives a [`Snapshot`] every `every_n_cycles` cycles.
    pub fn run_for_us_checkpointed(
        &mut self,
        us: f64,
        every_n_cycles: Cycle,
        on_checkpoint: &mut dyn FnMut(&Snapshot),
    ) -> Result<SimReport, SnapshotError> {
        let end = self.dram_cycle + self.cfg.us_to_cycles(us);
        self.advance_checkpointed(end, every_n_cycles, on_checkpoint)?;
        Ok(self.report())
    }

    /// Captures the full machine state as a versioned [`Snapshot`].
    ///
    /// Captures everything needed for bit-identical resume: per-channel
    /// device/controller/sampler/auditor state, the cache hierarchy,
    /// cores, workload RNG streams, accumulated cycle-stack windows, the
    /// latency histogram, and the cycle counters. Attachments (probes,
    /// telemetry, heartbeat, log sink, profiling timers) and tuning knobs
    /// (fast-forward, busy engine) are *not* captured — they belong to
    /// the hosting process and are preserved on the restore target.
    ///
    /// Fails with [`SnapshotError::StreamUnsupported`] if any core's
    /// instruction stream lacks `checkpoint` support (synthetic and
    /// vector-trace streams both support it).
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        let mut streams = Vec::with_capacity(self.streams.len());
        for (core, s) in self.streams.iter().enumerate() {
            streams.push(
                s.checkpoint()
                    .ok_or(SnapshotError::StreamUnsupported { core })?,
            );
        }
        Ok(Snapshot {
            version: SNAPSHOT_FORMAT_VERSION,
            config: self.cfg.clone(),
            dram_cycle: self.dram_cycle,
            next_cycle_sample: self.next_cycle_sample,
            cores: self.cores.iter().map(CoreModel::snapshot_state).collect(),
            streams,
            hierarchy: self.hier.snapshot_state(),
            controllers: self
                .ctrls
                .iter()
                .map(MemoryController::snapshot_state)
                .collect(),
            samplers: self
                .samplers
                .iter()
                .map(StackSampler::snapshot_state)
                .collect(),
            audits: self
                .audits
                .iter()
                .map(|a| a.as_ref().map(AuditHandle::snapshot_state))
                .collect(),
            cycle_samples: self.cycle_samples.clone(),
            cycle_total: self.cycle_total,
            histogram: self.histogram.clone(),
        })
    }

    /// Captures a full snapshot *and* arms delta tracking: subsequent
    /// [`snapshot_delta`](Self::snapshot_delta) calls serialize only the
    /// state dirtied since the previous checkpoint in the chain.
    ///
    /// The returned snapshot is identical to [`snapshot`](Self::snapshot)
    /// (only invisible bookkeeping differs), so it also serves as the
    /// full-format oracle in bit-identity comparisons.
    pub fn snapshot_base(&mut self) -> Result<Snapshot, SnapshotError> {
        let snap = self.snapshot()?;
        self.hier.mark_clean();
        self.ckpt_marks = Some(CkptMarks {
            last_cycle: self.dram_cycle,
            next_seq: 1,
            ctrl_snaps: snap.controllers.clone(),
            ctrl_sigs: self
                .ctrls
                .iter()
                .map(MemoryController::delta_signature)
                .collect(),
            sampler_lens: snap.samplers.iter().map(|s| s.samples_len()).collect(),
            cycle_samples_len: snap.cycle_samples.len(),
            histogram: snap.histogram.clone(),
        });
        Ok(snap)
    }

    /// Captures a delta checkpoint: only the state dirtied since the
    /// previous [`snapshot_base`](Self::snapshot_base) /
    /// `snapshot_delta`. Caches contribute their dirtied sets, samplers
    /// their newly rolled windows, and channels that provably did not
    /// move are omitted entirely; the small members are captured whole.
    ///
    /// Capture mutates nothing observable — a delta-checkpointed run
    /// stays bit-identical to an uncheckpointed one. Do not interleave
    /// [`report`](Self::report) calls with an open chain: reporting
    /// drains the rolled-window series the chain bookkeeping refers to.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::DeltaBaseMissing`] when no base snapshot was
    /// taken (or the chain was cleared by a restore), plus the stream
    /// checkpoint errors of [`snapshot`](Self::snapshot).
    pub fn snapshot_delta(&mut self) -> Result<SnapshotDelta, SnapshotError> {
        if self.ckpt_marks.is_none() {
            return Err(SnapshotError::DeltaBaseMissing);
        }
        let mut streams = Vec::with_capacity(self.streams.len());
        for (core, s) in self.streams.iter().enumerate() {
            streams.push(
                s.checkpoint()
                    .ok_or(SnapshotError::StreamUnsupported { core })?,
            );
        }
        let marks = self.ckpt_marks.as_mut().expect("checked above");
        let mut controllers = Vec::with_capacity(self.ctrls.len());
        for (ch, ctrl) in self.ctrls.iter().enumerate() {
            let sig = ctrl.delta_signature();
            if sig == marks.ctrl_sigs[ch] {
                // Signature match is not proof of quiescence — confirm
                // against the previous checkpoint's deep state.
                let fresh = ctrl.snapshot_state();
                if fresh == marks.ctrl_snaps[ch] {
                    controllers.push(None);
                    continue;
                }
                marks.ctrl_snaps[ch] = fresh.clone();
                controllers.push(Some(fresh));
            } else {
                let fresh = ctrl.snapshot_state();
                marks.ctrl_sigs[ch] = sig;
                marks.ctrl_snaps[ch] = fresh.clone();
                controllers.push(Some(fresh));
            }
        }
        let samplers: Vec<_> = self
            .samplers
            .iter()
            .zip(&marks.sampler_lens)
            .map(|(s, &len)| s.delta_since(len))
            .collect();
        for (len, s) in marks.sampler_lens.iter_mut().zip(&self.samplers) {
            *len = s.samples().len();
        }
        assert!(
            marks.cycle_samples_len <= self.cycle_samples.len(),
            "cycle windows shrank mid-chain — report() drained them; \
             take a fresh snapshot_base after reporting"
        );
        let delta = SnapshotDelta {
            version: SNAPSHOT_FORMAT_VERSION,
            seq: marks.next_seq,
            base_cycle: marks.last_cycle,
            dram_cycle: self.dram_cycle,
            next_cycle_sample: self.next_cycle_sample,
            cores: self.cores.iter().map(CoreModel::snapshot_state).collect(),
            streams,
            hierarchy: self.hier.take_delta(),
            controllers,
            samplers,
            audits: self
                .audits
                .iter()
                .map(|a| a.as_ref().map(AuditHandle::snapshot_state))
                .collect(),
            cycle_samples_base_len: marks.cycle_samples_len as u64,
            cycle_samples_appended: self.cycle_samples[marks.cycle_samples_len..].to_vec(),
            cycle_total: self.cycle_total,
            histogram: self.histogram.delta_since(&marks.histogram),
        };
        marks.histogram = self.histogram.clone();
        marks.cycle_samples_len = self.cycle_samples.len();
        marks.last_cycle = self.dram_cycle;
        marks.next_seq += 1;
        Ok(delta)
    }

    /// Restores the machine state captured by
    /// [`snapshot`](Self::snapshot), after which the run resumes
    /// bit-identically to one that was never interrupted.
    ///
    /// The target must have been built from a [`SystemConfig`] equal to
    /// `snap.config` (typically `Simulator::with_synthetic(cfg, pattern)`
    /// with the same arguments as the original run). The snapshot's
    /// audit-arming layout is re-applied per channel, so a restored
    /// release-build simulator audits iff the captured one did. Scratch
    /// and derived state (cycle views, busy-forward throttle, completion
    /// buffer) is invalidated; telemetry attached to the target treats
    /// windows that predate the snapshot as already published.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        if snap.version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                expected: SNAPSHOT_FORMAT_VERSION,
                got: u64::from(snap.version),
            });
        }
        if snap.config != self.cfg {
            return Err(SnapshotError::ConfigMismatch);
        }
        // Config equality pins n_cores and channels, so all the Vec
        // lengths below line up. Validate the streams first: they are the
        // only component that can reject, and failing before any mutation
        // leaves the target untouched on error.
        for (core, words) in snap.streams.iter().enumerate() {
            if !self.streams[core].restore_checkpoint(words) {
                return Err(SnapshotError::StreamRestoreFailed { core });
            }
        }
        for (core, state) in self.cores.iter_mut().zip(&snap.cores) {
            core.restore_state(state);
        }
        self.hier.restore_state(&snap.hierarchy);
        for (ctrl, state) in self.ctrls.iter_mut().zip(&snap.controllers) {
            ctrl.restore_state(state);
        }
        for (sampler, state) in self.samplers.iter_mut().zip(&snap.samplers) {
            sampler.restore_state(state);
        }
        // Re-apply the snapshot's audit arming per channel, preserving
        // any user probe, then restore the auditors' bookkeeping.
        for ch in 0..self.ctrls.len() {
            match (&snap.audits[ch], self.audits[ch].is_some()) {
                (Some(state), armed) => {
                    if !armed {
                        let (probe, handle) = audit_channel(&self.cfg.ctrl.device);
                        if self.ctrls[ch].probe_attached() {
                            let user = self.ctrls[ch].take_probe();
                            self.ctrls[ch]
                                .attach_probe(Box::new(TeeProbe::new(user, Box::new(probe))));
                        } else {
                            self.ctrls[ch].attach_probe(Box::new(probe));
                        }
                        self.audits[ch] = Some(handle);
                    }
                    self.audits[ch]
                        .as_ref()
                        .expect("just armed")
                        .restore_state(state);
                }
                (None, true) => {
                    self.audits[ch] = None;
                    let _ = self.ctrls[ch].take_probe();
                }
                (None, false) => {}
            }
        }
        self.cycle_samples = snap.cycle_samples.clone();
        self.cycle_total = snap.cycle_total;
        self.histogram = snap.histogram.clone();
        self.dram_cycle = snap.dram_cycle;
        self.next_cycle_sample = snap.next_cycle_sample;
        // Scratch and derived state: rebuilt or invalidated so the first
        // post-restore cycle steps normally (the busy engine re-engages
        // once fresh views exist; results are identical either way).
        let n_banks = self.ctrls[0].total_banks();
        self.views = vec![CycleView::idle(n_banks); self.ctrls.len()];
        self.views_valid_at = None;
        self.busy_attempt_after = 0;
        self.busy_backoff = 0;
        self.stall_kinds.clear();
        self.core_skips.clear();
        self.completion_buf.clear();
        // Any open delta chain refers to pre-restore state; callers start
        // a fresh chain with `snapshot_base` after restoring.
        self.ckpt_marks = None;
        // Telemetry attached to the target starts from here: windows the
        // snapshot already accumulated are not (re)published.
        self.windows_published = self
            .samplers
            .iter()
            .map(|s| s.samples().len())
            .min()
            .unwrap_or(0);
        Ok(())
    }

    /// Builds the report for everything simulated so far.
    ///
    /// The per-window CPU cycle-stack series is moved into the report
    /// rather than cloned; a subsequent `report()` covers only windows
    /// sampled after this call.
    pub fn report(&mut self) -> SimReport {
        // Flush the open sampling windows.
        let mut window = CycleStack::new();
        for core in &mut self.cores {
            window.merge(&core.take_stack_sample());
        }
        if window.total() > 0 {
            self.cycle_total.merge(&window);
            self.cycle_samples.push(window);
        }
        // Per-channel sample series (borrowed from the samplers), then
        // aggregate window-by-window.
        for s in &mut self.samplers {
            s.flush_partial();
        }
        // The flush may have completed one final window per channel; hand
        // it to the telemetry layer and close out the run's writers.
        if self.telemetry.is_some() {
            self.publish_windows();
        }
        if let Some(tel) = &mut self.telemetry {
            tel.finish_run();
        }
        let (samples, channel_stacks) = {
            let per_channel: Vec<&[TimeSample]> =
                self.samplers.iter().map(StackSampler::samples).collect();
            let samples = aggregate_channel_samples(&per_channel);
            let channel_stacks: Vec<BandwidthStack> = per_channel
                .iter()
                .map(|series| {
                    aggregate_bandwidth(series).unwrap_or_else(|| {
                        BandwidthStack::empty(self.cfg.ctrl.device.peak_bandwidth_gbps())
                    })
                })
                .collect();
            (samples, channel_stacks)
        };
        let bandwidth_stack = aggregate_bandwidth(&samples)
            .unwrap_or_else(|| BandwidthStack::empty(self.cfg.system_peak_gbps()));
        let latency_stack: LatencyStack = aggregate_latency(&samples);
        // Bottleneck advisor over the full sample series. Derived purely
        // from the samples, so it is deterministic and identical whether
        // or not live telemetry was attached.
        let diagnoses = {
            let observations: Vec<_> = samples.iter().map(TimeSample::observation).collect();
            let mut diagnoses = diagnose(&observations, AdvisorConfig::default());
            // Multi-channel runs additionally get the cross-channel
            // imbalance rule, fed the per-channel window series the
            // aggregate above was built from.
            if self.samplers.len() > 1 {
                let per_channel: Vec<Vec<WindowObservation>> = self
                    .samplers
                    .iter()
                    .map(|s| s.samples().iter().map(TimeSample::observation).collect())
                    .collect();
                let series: Vec<&[WindowObservation]> =
                    per_channel.iter().map(Vec::as_slice).collect();
                diagnoses.extend(diagnose_channel_imbalance(
                    &series,
                    AdvisorConfig::default(),
                ));
            }
            diagnoses
        };
        // Merge per-channel auditor findings, then run the report-time
        // conservation checks over the aggregated sample series and the
        // whole-run stack.
        let mut audit = AuditReport::default();
        for h in self.audits.iter().flatten() {
            audit.merge(&h.report());
        }
        if audit.armed {
            let mut record = |f: Option<dramstack_audit::ConservationFailure>| {
                if let Some(f) = f {
                    audit.conservation_total += 1;
                    if audit.conservation.len() < MAX_RECORDED {
                        audit.conservation.push(f);
                    }
                }
            };
            for (i, s) in samples.iter().enumerate() {
                record(conserve::check_window(i, s));
            }
            record(conserve::check_aggregate(&bandwidth_stack));
        }
        let ctrl_stats = {
            let mut total = dramstack_memctrl::CtrlStats::default();
            for c in &self.ctrls {
                let s = c.stats();
                total.reads_accepted += s.reads_accepted;
                total.writes_accepted += s.writes_accepted;
                total.reads_done += s.reads_done;
                total.writes_done += s.writes_done;
                total.read_hits += s.read_hits;
                total.write_hits += s.write_hits;
                total.write_drains += s.write_drains;
                total.drain_cycles += s.drain_cycles;
                total.refreshes += s.refreshes;
            }
            total
        };
        SimReport {
            bandwidth_stack,
            latency_stack,
            cycle_stack: self.cycle_total,
            cycle_samples: std::mem::take(&mut self.cycle_samples),
            sim_cycles: self.dram_cycle,
            elapsed_us: self.dram_cycle as f64 * self.cfg.dram_cycle_ns() / 1000.0,
            ctrl_stats,
            hierarchy_stats: self.hier.stats(),
            cache_stats: self.hier.cache_stats(),
            instrs_retired: self.cores.iter().map(CoreModel::retired).sum(),
            latency_histogram: self.histogram.clone(),
            channel_stacks,
            samples,
            perf: self.timers.report(self.dram_cycle),
            audit,
            diagnoses,
        }
    }

    /// The memory controller of `channel` (for inspection in tests).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn controller(&self, channel: usize) -> &MemoryController {
        &self.ctrls[channel]
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }
}

/// Zips per-channel sample series into system-level samples: bandwidth
/// stacks aggregated across channels, latencies merged read-weighted.
///
/// Takes the per-channel series by reference so the caller does not have
/// to clone each channel's samples; only the aggregated output windows
/// are materialized.
fn aggregate_channel_samples(per_channel: &[&[TimeSample]]) -> Vec<TimeSample> {
    if per_channel.len() == 1 {
        return per_channel[0].to_vec();
    }
    let windows = per_channel.iter().map(|s| s.len()).min().unwrap_or(0);
    let mut out = Vec::with_capacity(windows);
    let mut stacks: Vec<&BandwidthStack> = Vec::with_capacity(per_channel.len());
    for w in 0..windows {
        stacks.clear();
        stacks.extend(per_channel.iter().map(|s| &s[w].bandwidth));
        let mut latency = LatencyStack::empty();
        let mut ctrl = dramstack_obs::CtrlWindowStats::empty();
        for s in per_channel {
            latency.merge(&s[w].latency);
            ctrl.merge(&s[w].ctrl);
        }
        out.push(TimeSample {
            start_cycle: per_channel[0][w].start_cycle,
            cycles: per_channel[0][w].cycles,
            bandwidth: BandwidthStack::aggregate_channel_refs(&stacks),
            latency,
            ctrl,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::BwComponent;
    use dramstack_workloads::{GapConfig, GapKernel, Graph};

    #[test]
    fn sequential_one_core_reads_something() {
        let cfg = SystemConfig::paper_default(1);
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
        let r = sim.run_for_us(30.0);
        assert!(r.achieved_gbps() > 1.0, "got {}", r.achieved_gbps());
        assert!(r.bandwidth_stack.is_consistent());
        assert!(r.avg_read_latency_ns() > 10.0);
        assert_eq!(r.bandwidth_stack.gbps(BwComponent::Write), 0.0);
    }

    #[test]
    fn stack_always_sums_to_peak() {
        let cfg = SystemConfig::paper_default(2);
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::random(0.2));
        let r = sim.run_for_us(30.0);
        assert!((r.bandwidth_stack.total_gbps() - 19.2).abs() < 1e-6);
        for s in &r.samples {
            assert!(s.bandwidth.is_consistent());
        }
    }

    #[test]
    fn refresh_component_is_visible() {
        // Even an idle system refreshes: tRFC/tREFI ≈ 4.5 % of peak.
        let cfg = SystemConfig::paper_default(1);
        let streams: Vec<Box<dyn InstrStream>> = vec![Box::new(VecStream::new(Vec::new()))];
        let mut sim = Simulator::new(cfg, streams);
        let r = sim.run_for_us(100.0);
        let refresh_frac = r.bandwidth_stack.fraction(BwComponent::Refresh);
        assert!(
            (refresh_frac - 420.0 / 9360.0).abs() < 0.01,
            "refresh fraction {refresh_frac}"
        );
        assert!(r.bandwidth_stack.fraction(BwComponent::Idle) > 0.9);
    }

    #[test]
    fn gap_trace_runs_to_completion() {
        let g = Graph::kronecker(7, 4, 5);
        let traces = GapKernel::Bfs.trace(&g, 2, &GapConfig::default());
        let cfg = SystemConfig::paper_default(2);
        let mut sim = Simulator::with_traces(cfg, traces);
        let r = sim.run_to_completion(20_000_000);
        assert!(sim.finished(), "bfs must finish");
        assert!(r.instrs_retired > 1000);
        assert!(r.bandwidth_stack.is_consistent());
    }

    #[test]
    fn more_cores_more_bandwidth() {
        let bw = |n: usize| {
            let cfg = SystemConfig::paper_default(n);
            let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
            sim.run_for_us(30.0).achieved_gbps()
        };
        let one = bw(1);
        let four = bw(4);
        assert!(four > 1.5 * one, "1c {one} → 4c {four}");
    }

    #[test]
    fn stores_produce_write_bandwidth() {
        let cfg = SystemConfig::paper_default(1);
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.5));
        let r = sim.run_for_us(50.0);
        assert!(
            r.bandwidth_stack.gbps(BwComponent::Write) > 0.1,
            "write bandwidth {}",
            r.bandwidth_stack.gbps(BwComponent::Write)
        );
        assert!(r.ctrl_stats.writes_done > 0);
    }

    #[test]
    fn two_channels_double_the_saturated_bandwidth() {
        let run = |channels: usize| {
            let mut cfg = SystemConfig::paper_default(8);
            cfg.channels = channels;
            let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
            sim.run_for_us(30.0)
        };
        let one = run(1);
        let two = run(2);
        assert!((two.bandwidth_stack.peak_gbps() - 38.4).abs() < 1e-9);
        assert_eq!(two.channel_stacks.len(), 2);
        assert!(
            two.achieved_gbps() > 1.4 * one.achieved_gbps(),
            "2 channels: {} vs 1 channel: {}",
            two.achieved_gbps(),
            one.achieved_gbps()
        );
        // Lines interleave: both channels carry comparable traffic.
        let a = two.channel_stacks[0].achieved_gbps();
        let b = two.channel_stacks[1].achieved_gbps();
        assert!(
            (a - b).abs() < 0.3 * a.max(b),
            "channel balance: {a} vs {b}"
        );
        // The aggregate is consistent against the system peak.
        assert!(two.bandwidth_stack.is_consistent());
        assert!((two.bandwidth_stack.total_gbps() - 38.4).abs() < 1e-6);
    }

    #[test]
    fn skewed_channel_mapping_is_diagnosed() {
        // With 2 channels, address bit 6 picks the channel: a 128-byte
        // stride starting at 0 lands every access on channel 0. The
        // advisor's cross-channel rule must call that out, and stay quiet
        // on the interleaved (64-byte stride) control run.
        let run = |stride: u64| {
            let mut cfg = SystemConfig::paper_default(4);
            cfg.channels = 2;
            cfg.sample_period = 6_000;
            let traces: Vec<Vec<dramstack_cpu::Instr>> = (0..4u64)
                .map(|c| {
                    (0..6000u64)
                        .map(|i| dramstack_cpu::Instr::Load {
                            addr: (c << 32) + i * stride,
                        })
                        .collect()
                })
                .collect();
            let mut sim = Simulator::with_traces(cfg, traces);
            sim.run_for_us(60.0)
        };
        let skewed = run(128);
        let imbalance = |r: &SimReport| {
            r.diagnoses
                .iter()
                .filter(|d| d.class == dramstack_obs::BottleneckClass::ChannelImbalance)
                .count()
        };
        assert!(imbalance(&skewed) > 0, "{:?}", skewed.diagnoses);
        let d = skewed
            .diagnoses
            .iter()
            .find(|d| d.class == dramstack_obs::BottleneckClass::ChannelImbalance)
            .unwrap();
        assert!(d.evidence.contains("channel 0"), "{}", d.evidence);
        assert!(d.windows >= 3, "{d:?}");
        let balanced = run(64);
        assert_eq!(imbalance(&balanced), 0, "{:?}", balanced.diagnoses);
    }

    #[test]
    fn fast_forward_is_bit_identical_on_idle_run() {
        // An empty workload is the fast-forward's best case: everything
        // except the refresh grid is skippable. The report (modulo perf)
        // must not change at all.
        let run = |ff: bool| {
            let cfg = SystemConfig::paper_default(1);
            let streams: Vec<Box<dyn InstrStream>> = vec![Box::new(VecStream::new(Vec::new()))];
            let mut sim = Simulator::new(cfg, streams);
            sim.set_fast_forward(ff);
            let r = sim.run_for_us(100.0);
            (r.perf.fast_forwarded_cycles, r.strip_perf())
        };
        let (ff_cycles, fast) = run(true);
        let (naive_ff_cycles, naive) = run(false);
        assert_eq!(fast, naive);
        assert_eq!(naive_ff_cycles, 0);
        // The refresh grid leaves ≤ tRFC + scheduling slack per tREFI
        // period unskippable, so the vast majority of cycles skip.
        assert!(
            ff_cycles > fast.sim_cycles / 2,
            "only {ff_cycles} of {} cycles fast-forwarded",
            fast.sim_cycles
        );
    }

    #[test]
    fn fast_forward_is_bit_identical_after_a_busy_prefix() {
        // Real traffic first, then a long idle tail: the skip must engage
        // only once the whole system is inert, and land exactly on each
        // refresh so the accounting stays bit-identical.
        let run = |ff: bool| {
            let trace: Vec<dramstack_cpu::Instr> = (0..64u64)
                .map(|i| dramstack_cpu::Instr::Load { addr: i * 8192 })
                .collect();
            let cfg = SystemConfig::paper_default(1);
            let mut sim = Simulator::with_traces(cfg, vec![trace]);
            sim.set_fast_forward(ff);
            let r = sim.run_for_us(100.0);
            (r.perf.fast_forwarded_cycles, r.strip_perf())
        };
        let (ff_cycles, fast) = run(true);
        let (_, naive) = run(false);
        assert_eq!(fast, naive);
        assert!(fast.ctrl_stats.reads_done >= 64);
        assert!(ff_cycles > 0, "idle tail must fast-forward");
    }

    #[test]
    fn fast_forward_is_bit_identical_across_channels() {
        let run = |ff: bool| {
            let mut cfg = SystemConfig::paper_default(2);
            cfg.channels = 2;
            let trace: Vec<dramstack_cpu::Instr> = (0..32u64)
                .map(|i| dramstack_cpu::Instr::Load { addr: i * 8192 })
                .collect();
            let mut sim = Simulator::with_traces(cfg, vec![trace.clone(), trace]);
            sim.set_fast_forward(ff);
            sim.run_for_us(60.0).strip_perf()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn busy_engine_is_bit_identical_on_saturated_run() {
        // A saturating sequential workload is the busy engine's home
        // turf: cores park on full ROBs and the controllers are the
        // bottleneck. Engine on vs. off must produce the same report
        // (modulo perf), and the busy skip must actually engage.
        let run = |on: bool| {
            let cfg = SystemConfig::paper_default(8);
            let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
            sim.set_busy_engine(on);
            let r = sim.run_for_us(30.0);
            (r.perf.busy_forwarded_cycles, r.strip_perf())
        };
        let (busy_cycles, fast) = run(true);
        let (off_cycles, naive) = run(false);
        assert_eq!(fast, naive);
        assert_eq!(off_cycles, 0);
        assert!(
            busy_cycles > 0,
            "busy forward never engaged on a saturated run"
        );
    }

    #[test]
    fn busy_engine_is_bit_identical_on_random_and_mixed_traffic() {
        let run = |on: bool, pattern: SyntheticPattern, cores: usize| {
            let cfg = SystemConfig::paper_default(cores);
            let mut sim = Simulator::with_synthetic(cfg, pattern);
            sim.set_busy_engine(on);
            sim.run_for_us(30.0).strip_perf()
        };
        assert_eq!(
            run(true, SyntheticPattern::random(0.0), 2),
            run(false, SyntheticPattern::random(0.0), 2),
        );
        assert_eq!(
            run(true, SyntheticPattern::sequential(0.3), 4),
            run(false, SyntheticPattern::sequential(0.3), 4),
        );
        assert_eq!(
            run(true, SyntheticPattern::sequential(0.4), 8),
            run(false, SyntheticPattern::sequential(0.4), 8),
        );
    }

    #[test]
    fn busy_engine_is_bit_identical_across_channels_and_traces() {
        let run = |on: bool| {
            let mut cfg = SystemConfig::paper_default(2);
            cfg.channels = 2;
            let trace: Vec<dramstack_cpu::Instr> = (0..256u64)
                .map(|i| dramstack_cpu::Instr::Load { addr: i * 64 })
                .collect();
            let mut sim = Simulator::with_traces(cfg, vec![trace.clone(), trace]);
            sim.set_busy_engine(on);
            sim.run_to_completion(5_000_000).strip_perf()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn busy_engine_composes_with_idle_fast_forward() {
        // Busy prefix, idle tail: both skips engage in the same run and
        // the result still matches fully naive per-cycle stepping.
        let run = |ff: bool, busy: bool| {
            let trace: Vec<dramstack_cpu::Instr> = (0..128u64)
                .map(|i| dramstack_cpu::Instr::Load { addr: i * 4096 })
                .collect();
            let cfg = SystemConfig::paper_default(1);
            let mut sim = Simulator::with_traces(cfg, vec![trace]);
            sim.set_fast_forward(ff);
            sim.set_busy_engine(busy);
            let r = sim.run_for_us(100.0);
            (
                r.perf.fast_forwarded_cycles,
                r.perf.busy_forwarded_cycles,
                r.strip_perf(),
            )
        };
        let (ff, _busy, both) = run(true, true);
        let (_, _, naive) = run(false, false);
        let (_, _, ff_only) = run(true, false);
        assert_eq!(both, naive);
        assert_eq!(ff_only, naive);
        assert!(ff > 0, "idle tail must still fast-forward");
    }

    #[test]
    fn default_armed_auditor_is_clean_on_paper_runs() {
        // Debug/test builds arm the shadow auditor on every default
        // simulation; the paper-figure configurations must audit clean —
        // protocol-legal command streams AND integer-exact stacks.
        let check = |r: &crate::SimReport, what: &str| {
            assert!(r.audit.armed, "{what}: auditor not armed in debug build");
            assert!(r.audit.commands_audited > 0, "{what}: nothing audited");
            assert!(r.audit.reads_checked > 0, "{what}: no reads checked");
            assert!(
                r.audit.is_clean(),
                "{what}: violation {:?} / conservation {:?}",
                r.audit.first_violation(),
                r.audit.conservation.first()
            );
        };
        let mut sim = Simulator::with_synthetic(
            SystemConfig::paper_default(2),
            SyntheticPattern::sequential(0.3),
        );
        check(&sim.run_for_us(30.0), "sequential 2-core");

        let mut sim = Simulator::with_synthetic(
            SystemConfig::paper_default(4),
            SyntheticPattern::random(0.2),
        );
        check(&sim.run_for_us(30.0), "random 4-core");

        let mut cfg = SystemConfig::paper_default(2);
        cfg.channels = 2;
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
        check(&sim.run_for_us(30.0), "two channels");

        let g = Graph::kronecker(7, 4, 5);
        let traces = GapKernel::Bfs.trace(&g, 2, &GapConfig::default());
        let mut sim = Simulator::with_traces(SystemConfig::paper_gap(2), traces);
        check(&sim.run_to_completion(20_000_000), "gap bfs");
    }

    #[test]
    fn auditor_never_perturbs_results() {
        // Armed vs. disarmed runs must be bit-identical once the audit
        // findings themselves (present only when armed) are normalized
        // away — the auditor observes, it never steers. And because the
        // audit probe is event-driven, fast-forwarding stays engaged.
        let run = |armed: bool| {
            let cfg = SystemConfig::paper_default(1);
            let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.2));
            sim.set_audit(armed);
            assert_eq!(sim.audit_armed(), armed);
            let r = sim.run_for_us(40.0);
            let ff = r.perf.fast_forwarded_cycles;
            let mut stripped = r.strip_perf();
            stripped.audit = dramstack_audit::AuditReport::default();
            (ff, stripped)
        };
        let (_, armed) = run(true);
        let (_, bare) = run(false);
        assert_eq!(armed, bare);

        // Same equivalence on an idle run, where fast-forward dominates:
        // arming must not re-disable the skip.
        let idle = |armed: bool| {
            let streams: Vec<Box<dyn InstrStream>> = vec![Box::new(VecStream::new(Vec::new()))];
            let mut sim = Simulator::new(SystemConfig::paper_default(1), streams);
            sim.set_audit(armed);
            let r = sim.run_for_us(100.0);
            let ff = r.perf.fast_forwarded_cycles;
            let mut stripped = r.strip_perf();
            stripped.audit = dramstack_audit::AuditReport::default();
            (ff, stripped)
        };
        let (ff_armed, r_armed) = idle(true);
        let (ff_bare, r_bare) = idle(false);
        assert_eq!(r_armed, r_bare);
        assert!(
            ff_armed > r_armed.sim_cycles / 2,
            "auditor disabled fast-forward: only {ff_armed} skipped"
        );
        assert_eq!(ff_armed, ff_bare);
    }

    #[test]
    fn injected_fault_surfaces_in_the_sim_report() {
        let cfg = SystemConfig::paper_default(2);
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
        sim.set_audit(true);
        sim.inject_fault(0, SeededFault::TrcdOneEarly);
        let r = sim.run_for_us(30.0);
        assert!(
            r.audit.violations_total > 0,
            "seeded tRCD fault not caught end-to-end"
        );
        let v = r.audit.first_violation().unwrap();
        assert_eq!(v.rule, dramstack_audit::AuditRule::TRcd, "{v}");
    }

    #[test]
    fn user_probe_tees_alongside_armed_auditor() {
        #[derive(Debug, Default)]
        struct Counter(std::rc::Rc<std::cell::Cell<u64>>);
        impl Probe for Counter {
            fn command_issued(&mut self, _: Cycle, _: dramstack_dram::Command, _: usize) {
                self.0.set(self.0.get() + 1);
            }
        }
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let cfg = SystemConfig::paper_default(1);
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
        sim.set_audit(true);
        sim.attach_probe(0, Box::new(Counter(std::rc::Rc::clone(&count))));
        let r = sim.run_for_us(10.0);
        // Both observers saw the same command stream.
        assert!(count.get() > 0);
        assert_eq!(r.audit.commands_audited, count.get());
        assert!(r.audit.is_clean());
    }

    #[test]
    fn try_new_rejects_bad_configs_without_panicking() {
        let mut cfg = SystemConfig::paper_default(1);
        cfg.channels = 3;
        let streams: Vec<Box<dyn InstrStream>> = vec![Box::new(VecStream::new(Vec::new()))];
        match Simulator::try_new(cfg, streams) {
            Err(crate::ConfigError::BadChannelCount(3)) => {}
            other => panic!("expected BadChannelCount, got {other:?}"),
        }
        let cfg = SystemConfig::paper_default(2);
        match Simulator::try_new(cfg, Vec::new()) {
            Err(crate::ConfigError::StreamCount {
                expected: 2,
                got: 0,
            }) => {}
            other => panic!("expected StreamCount, got {other:?}"),
        }
    }

    #[test]
    fn channel_latency_drops_under_load_split() {
        let run = |channels: usize| {
            let mut cfg = SystemConfig::paper_default(8);
            cfg.channels = channels;
            let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
            sim.run_for_us(30.0).avg_read_latency_ns()
        };
        // Splitting a saturated load over two channels relieves queueing.
        assert!(run(2) < run(1));
    }
}
