//! Compact binary snapshot container (the `.dsnp` format).
//!
//! The codec serializes the same [`Value`] tree the JSON path uses, so
//! both formats describe byte-for-byte identical machine state; only the
//! wire shape differs. Layout (all integers varint/LEB128 unless noted):
//!
//! ```text
//! magic      "DSNP"                       4 bytes
//! container  SNAPSHOT_BINARY_VERSION      u32 LE
//! kind       0 = full snapshot, 1 = delta u8
//! format     SNAPSHOT_FORMAT_VERSION      u32 LE (of the embedded tree)
//! strings    count, then per string: byte length + UTF-8 bytes
//! sections   count, then per section: name string-id + payload length
//! payloads   section payloads, concatenated in table order
//! ```
//!
//! Every string (map keys and string values) is interned in the string
//! table and referenced by id, so the hundreds of thousands of repeated
//! field names in a snapshot cost one varint each. Each top-level field
//! of the snapshot map becomes its own section, which lets a truncated
//! file name the section it died in. Values are tagged:
//!
//! ```text
//! 0 Null   1 false   2 true
//! 3 Int    zigzag varint (i128)
//! 4 Float  8-byte LE IEEE-754 bit pattern (exact, NaN-safe)
//! 5 Str    string-table id
//! 6 Seq    element count, then RLE runs: run length + one encoded value
//! 7 Map    entry count, then per entry: key string-id + encoded value
//! ```
//!
//! Sequence runs group *scalars* only, with floats compared by bit
//! pattern (so `-0.0` and `0.0` never collapse); nested seqs/maps are
//! emitted as runs of one. The big regular columns in a snapshot — cache
//! tag/LRU/valid/dirty arrays, sampler series — are exactly the shapes
//! RLE and varints compress well.

use std::collections::HashMap;

use serde::Value;

use crate::snapshot::{SnapshotError, SNAPSHOT_BINARY_VERSION};

const MAGIC: &[u8; 4] = b"DSNP";

/// `kind` byte of a full snapshot file.
pub const KIND_FULL: u8 = 0;
/// `kind` byte of a delta snapshot file.
pub const KIND_DELTA: u8 = 1;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct StringTable {
    strings: Vec<String>,
    ids: HashMap<String, u64>,
}

impl StringTable {
    fn new() -> Self {
        StringTable {
            strings: Vec::new(),
            ids: HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u64;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// Scalar equality for run grouping. Floats compare by bit pattern so a
/// run can never rewrite `-0.0` as `0.0` (or collapse distinct NaNs).
fn run_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>, table: &mut StringTable) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(false) => out.push(1),
        Value::Bool(true) => out.push(2),
        Value::Int(i) => {
            out.push(3);
            put_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(4);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            let id = table.intern(s);
            put_varint(out, u128::from(id));
        }
        Value::Seq(items) => {
            out.push(6);
            put_varint(out, items.len() as u128);
            let mut i = 0;
            while i < items.len() {
                let mut run = 1;
                while i + run < items.len() && run_eq(&items[i], &items[i + run]) {
                    run += 1;
                }
                put_varint(out, run as u128);
                encode_value(&items[i], out, table);
                i += run;
            }
        }
        Value::Map(entries) => {
            out.push(7);
            put_varint(out, entries.len() as u128);
            for (k, val) in entries {
                let id = table.intern(k);
                put_varint(out, u128::from(id));
                encode_value(val, out, table);
            }
        }
    }
}

/// Encodes a snapshot or delta [`Value`] tree into the binary container.
///
/// # Panics
///
/// Panics if `value` is not a map — snapshots and deltas are structs.
pub fn encode(value: &Value, kind: u8, format_version: u32) -> Vec<u8> {
    let Value::Map(fields) = value else {
        panic!("binary container encodes struct maps only");
    };
    let mut table = StringTable::new();
    let sections: Vec<(u64, Vec<u8>)> = fields
        .iter()
        .map(|(name, v)| {
            let id = table.intern(name);
            let mut payload = Vec::new();
            encode_value(v, &mut payload, &mut table);
            (id, payload)
        })
        .collect();

    let mut out = Vec::with_capacity(sections.iter().map(|(_, p)| p.len() + 8).sum::<usize>() + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&SNAPSHOT_BINARY_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&format_version.to_le_bytes());
    put_varint(&mut out, table.strings.len() as u128);
    for s in &table.strings {
        put_varint(&mut out, s.len() as u128);
        out.extend_from_slice(s.as_bytes());
    }
    put_varint(&mut out, sections.len() as u128);
    for (id, payload) in &sections {
        put_varint(&mut out, u128::from(*id));
        put_varint(&mut out, payload.len() as u128);
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A decoded binary container: the header fields plus the reassembled
/// [`Value`] tree (one top-level map field per section, in table order).
#[derive(Debug)]
pub struct Decoded {
    /// [`KIND_FULL`] or [`KIND_DELTA`].
    pub kind: u8,
    /// `SNAPSHOT_FORMAT_VERSION` of the embedded tree.
    pub format_version: u32,
    /// The reassembled snapshot/delta map.
    pub value: Value,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
    /// Remaining decoded-element allowance. RLE means a few corrupt
    /// bytes can claim billions of elements; charging every materialized
    /// element against this budget turns that into a typed `Corrupt`
    /// instead of an allocation blow-up. Real snapshots sit far below it.
    budget: usize,
}

const ELEMENT_BUDGET: usize = 1 << 24;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'a str) -> Self {
        Reader {
            buf,
            pos: 0,
            section,
            budget: ELEMENT_BUDGET,
        }
    }

    fn charge(&mut self, n: usize) -> Result<(), SnapshotError> {
        if n > self.budget {
            return Err(self.corrupt(format!(
                "container claims more than {ELEMENT_BUDGET} elements"
            )));
        }
        self.budget -= n;
        Ok(())
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated {
            section: self.section.to_string(),
        }
    }

    fn corrupt(&self, msg: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt {
            msg: format!("{} (in section `{}`)", msg.into(), self.section),
        }
    }

    fn byte(&mut self) -> Result<u8, SnapshotError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u128, SnapshotError> {
        let mut v: u128 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 128 {
                return Err(self.corrupt("varint overflows 128 bits"));
            }
            v |= u128::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn len(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("{what} count {v} overflows")))
    }

    fn string_id(&mut self, table: &[String]) -> Result<String, SnapshotError> {
        let id = self.varint()?;
        let idx = usize::try_from(id).ok().filter(|&i| i < table.len());
        match idx {
            Some(i) => Ok(table[i].clone()),
            None => Err(self.corrupt(format!("string id {id} outside table of {}", table.len()))),
        }
    }

    fn value(&mut self, table: &[String]) -> Result<Value, SnapshotError> {
        match self.byte()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(false)),
            2 => Ok(Value::Bool(true)),
            3 => Ok(Value::Int(unzigzag(self.varint()?))),
            4 => {
                let raw = self.bytes(8)?;
                let bits = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                Ok(Value::Float(f64::from_bits(bits)))
            }
            5 => Ok(Value::Str(self.string_id(table)?)),
            6 => {
                let total = self.len("sequence")?;
                self.charge(total)?;
                let mut items = Vec::with_capacity(total.min(1 << 20));
                while items.len() < total {
                    let run = self.len("run")?;
                    if run == 0 || run > total - items.len() {
                        return Err(
                            self.corrupt(format!("run of {run} overflows sequence of {total}"))
                        );
                    }
                    let v = self.value(table)?;
                    for _ in 1..run {
                        items.push(v.clone());
                    }
                    items.push(v);
                }
                Ok(Value::Seq(items))
            }
            7 => {
                let total = self.len("map")?;
                self.charge(total)?;
                let mut entries = Vec::with_capacity(total.min(1 << 20));
                for _ in 0..total {
                    let key = self.string_id(table)?;
                    let v = self.value(table)?;
                    entries.push((key, v));
                }
                Ok(Value::Map(entries))
            }
            t => Err(self.corrupt(format!("unknown value tag {t}"))),
        }
    }
}

/// Decodes a binary container produced by [`encode`].
///
/// # Errors
///
/// [`SnapshotError::BadMagic`] when the file is not a `.dsnp` container,
/// [`SnapshotError::BinaryVersionMismatch`] for a foreign container
/// version, [`SnapshotError::Truncated`] naming the section the data ran
/// out in, and [`SnapshotError::Corrupt`] for structural damage. The
/// embedded tree's *format* version is returned for the caller to check.
pub fn decode(bytes: &[u8]) -> Result<Decoded, SnapshotError> {
    let mut r = Reader::new(bytes, "header");
    let magic = r.bytes(4).map_err(|_| SnapshotError::BadMagic)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let container = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes"));
    if container != SNAPSHOT_BINARY_VERSION {
        return Err(SnapshotError::BinaryVersionMismatch {
            expected: SNAPSHOT_BINARY_VERSION,
            got: container,
        });
    }
    let kind = r.byte()?;
    if kind != KIND_FULL && kind != KIND_DELTA {
        return Err(r.corrupt(format!("unknown snapshot kind {kind}")));
    }
    let format_version = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes"));

    let n_strings = r.len("string table")?;
    let mut table = Vec::with_capacity(n_strings.min(1 << 20));
    for _ in 0..n_strings {
        let len = r.len("string")?;
        let raw = r.bytes(len)?;
        let s =
            std::str::from_utf8(raw).map_err(|_| r.corrupt("string table entry is not UTF-8"))?;
        table.push(s.to_string());
    }

    let n_sections = r.len("section table")?;
    let mut sections = Vec::with_capacity(n_sections.min(1 << 16));
    for _ in 0..n_sections {
        let name = r.string_id(&table)?;
        let len = r.len("section")?;
        sections.push((name, len));
    }

    let mut offset = r.pos;
    let mut fields = Vec::with_capacity(sections.len());
    for (name, len) in &sections {
        let end = offset.checked_add(*len).ok_or(SnapshotError::Truncated {
            section: name.clone(),
        })?;
        let payload = bytes.get(offset..end).ok_or(SnapshotError::Truncated {
            section: name.clone(),
        })?;
        let mut pr = Reader::new(payload, name);
        let v = pr.value(&table)?;
        if pr.pos != payload.len() {
            return Err(pr.corrupt(format!(
                "{} trailing bytes after section value",
                payload.len() - pr.pos
            )));
        }
        fields.push((name.clone(), v));
        offset = end;
    }
    if offset != bytes.len() {
        return Err(SnapshotError::Corrupt {
            msg: format!("{} trailing bytes after last section", bytes.len() - offset),
        });
    }

    Ok(Decoded {
        kind,
        format_version,
        value: Value::Map(fields),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Map(vec![
            ("version".into(), Value::Int(2)),
            (
                "stats".into(),
                Value::Map(vec![
                    ("hits".into(), Value::Int(10)),
                    ("rate".into(), Value::Float(0.25)),
                    ("label".into(), Value::Str("open".into())),
                    ("extra".into(), Value::Null),
                ]),
            ),
            (
                "tags".into(),
                Value::Seq(
                    std::iter::repeat_n(Value::Int(0), 100)
                        .chain((0..10).map(Value::Int))
                        .collect(),
                ),
            ),
            (
                "flags".into(),
                Value::Seq(vec![
                    Value::Bool(true),
                    Value::Bool(true),
                    Value::Bool(false),
                ]),
            ),
        ])
    }

    #[test]
    fn roundtrip_preserves_tree_and_header() {
        let v = sample();
        let bytes = encode(&v, KIND_FULL, 2);
        let d = decode(&bytes).expect("container decodes");
        assert_eq!(d.kind, KIND_FULL);
        assert_eq!(d.format_version, 2);
        assert_eq!(d.value, v);
    }

    #[test]
    fn rle_compresses_constant_runs() {
        let constant = Value::Map(vec![("xs".into(), Value::Seq(vec![Value::Int(7); 10_000]))]);
        let varied = Value::Map(vec![(
            "xs".into(),
            Value::Seq((0..10_000).map(|i| Value::Int(i * 1000)).collect()),
        )]);
        let c = encode(&constant, KIND_FULL, 2).len();
        let v = encode(&varied, KIND_FULL, 2).len();
        assert!(c < 64, "constant run should collapse, got {c} bytes");
        assert!(v > 10_000, "varied run cannot collapse, got {v} bytes");
        assert_eq!(
            decode(&encode(&varied, KIND_FULL, 2)).unwrap().value,
            varied
        );
    }

    #[test]
    fn floats_roundtrip_by_bit_pattern() {
        let v = Value::Map(vec![(
            "fs".into(),
            Value::Seq(vec![
                Value::Float(0.0),
                Value::Float(-0.0),
                Value::Float(f64::NAN),
                Value::Float(1.0 / 3.0),
            ]),
        )]);
        let d = decode(&encode(&v, KIND_FULL, 2)).unwrap();
        let Value::Map(fields) = &d.value else {
            panic!()
        };
        let Value::Seq(fs) = &fields[0].1 else {
            panic!()
        };
        let bits: Vec<u64> = fs
            .iter()
            .map(|f| match f {
                Value::Float(x) => x.to_bits(),
                other => panic!("expected float, got {other:?}"),
            })
            .collect();
        assert_eq!(bits[0], 0.0f64.to_bits());
        assert_eq!(
            bits[1],
            (-0.0f64).to_bits(),
            "-0.0 must not collapse into 0.0"
        );
        assert_eq!(bits[2], f64::NAN.to_bits());
        assert_eq!(bits[3], (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn bad_magic_is_typed() {
        assert!(matches!(decode(b"JSON{}"), Err(SnapshotError::BadMagic)));
        assert!(matches!(decode(b""), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn container_version_mismatch_is_typed() {
        let mut bytes = encode(&sample(), KIND_FULL, 2);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        match decode(&bytes) {
            Err(SnapshotError::BinaryVersionMismatch { expected, got }) => {
                assert_eq!(expected, SNAPSHOT_BINARY_VERSION);
                assert_eq!(got, 99);
            }
            other => panic!("expected BinaryVersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_names_the_dying_section() {
        let bytes = encode(&sample(), KIND_FULL, 2);
        // Chop mid-payload: the error must name a real section, and no
        // prefix length may panic.
        let mut seen_section = false;
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(_) => panic!("decoded a {cut}-byte prefix of {}", bytes.len()),
                Err(SnapshotError::Truncated { section }) => {
                    if section != "header" {
                        assert!(
                            ["version", "stats", "tags", "flags"].contains(&section.as_str()),
                            "unknown section `{section}`"
                        );
                        seen_section = true;
                    }
                }
                Err(
                    SnapshotError::BadMagic
                    | SnapshotError::BinaryVersionMismatch { .. }
                    | SnapshotError::Corrupt { .. },
                ) => {}
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(seen_section, "no cut point ever blamed a payload section");
    }

    #[test]
    fn corrupt_tag_is_typed_not_a_panic() {
        let mut bytes = encode(&sample(), KIND_FULL, 2);
        let n = bytes.len();
        bytes[n - 1] = 0xff;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::Corrupt { .. } | SnapshotError::Truncated { .. })
        ));
    }
}
