//! Full-system configuration.

use serde::{Deserialize, Serialize};

use dramstack_cpu::{CoreConfig, HierarchyConfig};
use dramstack_dram::Cycle;
use dramstack_memctrl::CtrlConfig;

/// Configuration of a simulated system: cores, hierarchy, controller and
/// clocking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub n_cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Memory controller + DRAM channel.
    pub ctrl: CtrlConfig,
    /// Core cycles per DRAM command-clock cycle (2 ⇒ 2.4 GHz cores over a
    /// 1.2 GHz DDR4-2400 command clock).
    pub core_clock_mult: u32,
    /// Through-time sampling period in DRAM cycles.
    pub sample_period: Cycle,
    /// Memory channels (controllers); consecutive cache lines interleave
    /// across them. The paper's setup uses 1; stacks are built per
    /// channel and aggregated.
    pub channels: usize,
}

impl SystemConfig {
    /// The paper's setup: `n_cores` Skylake-like cores, one DDR4-2400
    /// channel, FR-FCFS, open page, 32-entry write queue. Samples every
    /// ~10 µs.
    pub fn paper_default(n_cores: usize) -> Self {
        SystemConfig {
            n_cores,
            core: CoreConfig::paper_default(),
            hierarchy: HierarchyConfig::paper_default(),
            ctrl: CtrlConfig::paper_default(),
            core_clock_mult: 2,
            sample_period: 12_000,
            channels: 1,
        }
    }

    /// The GAP-experiment variant: identical to
    /// [`paper_default`](Self::paper_default) except the shared LLC is
    /// scaled to 1 MB (and L2 to 256 KB). The paper's graph inputs are two
    /// orders of magnitude larger than its 11 MB LLC; our cycle-simulated
    /// graphs are scaled down, so the cache is scaled with them to keep the
    /// same memory-bound graph:LLC ratio (see DESIGN.md substitutions).
    pub fn paper_gap(n_cores: usize) -> Self {
        use dramstack_cpu::CacheConfig;
        let mut c = Self::paper_default(n_cores);
        c.hierarchy.l2 = CacheConfig {
            size_bytes: 256 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 14,
        };
        c.hierarchy.llc = CacheConfig {
            size_bytes: 1 << 20,
            ways: 8,
            line_bytes: 64,
            latency: 44,
        };
        c
    }

    /// Core clock frequency in GHz.
    pub fn core_freq_ghz(&self) -> f64 {
        f64::from(self.ctrl.device.timing.freq_mhz) * f64::from(self.core_clock_mult) / 1000.0
    }

    /// Duration of one DRAM cycle in nanoseconds.
    pub fn dram_cycle_ns(&self) -> f64 {
        self.ctrl.device.timing.cycle_ns()
    }

    /// Converts microseconds of simulated time to DRAM cycles.
    pub fn us_to_cycles(&self, us: f64) -> Cycle {
        (us * 1000.0 / self.dram_cycle_ns()).round() as Cycle
    }

    /// Validates nested configurations.
    ///
    /// # Panics
    ///
    /// Panics if the device configuration is invalid or `n_cores`/clock
    /// multiplier is zero.
    pub fn validate(&self) {
        assert!(self.n_cores > 0, "need at least one core");
        assert!(
            self.core_clock_mult > 0,
            "core clock multiplier must be nonzero"
        );
        assert!(self.sample_period > 0, "sample period must be nonzero");
        assert!(
            self.channels > 0 && self.channels.is_power_of_two(),
            "channels must be a nonzero power of two"
        );
        self.ctrl
            .device
            .validate()
            .expect("invalid device configuration");
    }

    /// Total system peak bandwidth across all channels, in GB/s.
    pub fn system_peak_gbps(&self) -> f64 {
        self.ctrl.device.peak_bandwidth_gbps() * self.channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper_numbers() {
        let c = SystemConfig::paper_default(8);
        c.validate();
        assert_eq!(c.n_cores, 8);
        assert_eq!(c.core.rob_entries, 224);
        assert_eq!(c.core.width, 4);
        assert!((c.core_freq_ghz() - 2.4).abs() < 1e-9);
        assert!((c.ctrl.device.peak_bandwidth_gbps() - 19.2).abs() < 1e-9);
        assert_eq!(c.ctrl.write_queue_cap, 32);
    }

    #[test]
    fn us_conversion_roundtrips() {
        let c = SystemConfig::paper_default(1);
        // 1 µs at 1.2 GHz = 1200 cycles.
        assert_eq!(c.us_to_cycles(1.0), 1200);
    }
}
