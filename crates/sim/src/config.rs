//! Full-system configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use dramstack_cpu::{CoreConfig, HierarchyConfig};
use dramstack_dram::Cycle;
use dramstack_memctrl::CtrlConfig;

/// Why a [`SystemConfig`] (or the streams handed to the simulator) was
/// rejected. User-supplied configurations surface as this typed error
/// instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n_cores` was zero.
    NoCores,
    /// `core_clock_mult` was zero.
    ZeroClockMultiplier,
    /// `sample_period` was zero.
    ZeroSamplePeriod,
    /// `channels` was zero or not a power of two.
    BadChannelCount(usize),
    /// The DRAM device configuration is invalid.
    Device(dramstack_dram::ConfigError),
    /// The number of instruction streams does not match `n_cores`.
    StreamCount {
        /// Configured core count.
        expected: usize,
        /// Streams actually provided.
        got: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCores => write!(f, "need at least one core"),
            ConfigError::ZeroClockMultiplier => write!(f, "core clock multiplier must be nonzero"),
            ConfigError::ZeroSamplePeriod => write!(f, "sample period must be nonzero"),
            ConfigError::BadChannelCount(n) => {
                write!(f, "channels must be a nonzero power of two, got {n}")
            }
            ConfigError::Device(e) => write!(f, "invalid device configuration: {e}"),
            ConfigError::StreamCount { expected, got } => {
                write!(f, "one stream per core: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<dramstack_dram::ConfigError> for ConfigError {
    fn from(e: dramstack_dram::ConfigError) -> Self {
        ConfigError::Device(e)
    }
}

/// Configuration of a simulated system: cores, hierarchy, controller and
/// clocking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub n_cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Memory controller + DRAM channel.
    pub ctrl: CtrlConfig,
    /// Core cycles per DRAM command-clock cycle (2 ⇒ 2.4 GHz cores over a
    /// 1.2 GHz DDR4-2400 command clock).
    pub core_clock_mult: u32,
    /// Through-time sampling period in DRAM cycles.
    pub sample_period: Cycle,
    /// Memory channels (controllers); consecutive cache lines interleave
    /// across them. The paper's setup uses 1; stacks are built per
    /// channel and aggregated.
    pub channels: usize,
}

impl SystemConfig {
    /// The paper's setup: `n_cores` Skylake-like cores, one DDR4-2400
    /// channel, FR-FCFS, open page, 32-entry write queue. Samples every
    /// ~10 µs.
    pub fn paper_default(n_cores: usize) -> Self {
        SystemConfig {
            n_cores,
            core: CoreConfig::paper_default(),
            hierarchy: HierarchyConfig::paper_default(),
            ctrl: CtrlConfig::paper_default(),
            core_clock_mult: 2,
            sample_period: 12_000,
            channels: 1,
        }
    }

    /// The GAP-experiment variant: identical to
    /// [`paper_default`](Self::paper_default) except the shared LLC is
    /// scaled to 1 MB (and L2 to 256 KB). The paper's graph inputs are two
    /// orders of magnitude larger than its 11 MB LLC; our cycle-simulated
    /// graphs are scaled down, so the cache is scaled with them to keep the
    /// same memory-bound graph:LLC ratio (see DESIGN.md substitutions).
    pub fn paper_gap(n_cores: usize) -> Self {
        use dramstack_cpu::CacheConfig;
        let mut c = Self::paper_default(n_cores);
        c.hierarchy.l2 = CacheConfig {
            size_bytes: 256 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 14,
        };
        c.hierarchy.llc = CacheConfig {
            size_bytes: 1 << 20,
            ways: 8,
            line_bytes: 64,
            latency: 44,
        };
        c
    }

    /// Core clock frequency in GHz.
    pub fn core_freq_ghz(&self) -> f64 {
        f64::from(self.ctrl.device.timing.freq_mhz) * f64::from(self.core_clock_mult) / 1000.0
    }

    /// Duration of one DRAM cycle in nanoseconds.
    pub fn dram_cycle_ns(&self) -> f64 {
        self.ctrl.device.timing.cycle_ns()
    }

    /// Converts microseconds of simulated time to DRAM cycles.
    pub fn us_to_cycles(&self, us: f64) -> Cycle {
        (us * 1000.0 / self.dram_cycle_ns()).round() as Cycle
    }

    /// Validates nested configurations, returning a typed error for any
    /// violated constraint (no panics on user input).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 {
            return Err(ConfigError::NoCores);
        }
        if self.core_clock_mult == 0 {
            return Err(ConfigError::ZeroClockMultiplier);
        }
        if self.sample_period == 0 {
            return Err(ConfigError::ZeroSamplePeriod);
        }
        if self.channels == 0 || !self.channels.is_power_of_two() {
            return Err(ConfigError::BadChannelCount(self.channels));
        }
        self.ctrl.device.validate()?;
        Ok(())
    }

    /// Total system peak bandwidth across all channels, in GB/s.
    pub fn system_peak_gbps(&self) -> f64 {
        self.ctrl.device.peak_bandwidth_gbps() * self.channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper_numbers() {
        let c = SystemConfig::paper_default(8);
        c.validate().expect("paper default must validate");
        assert_eq!(c.n_cores, 8);
        assert_eq!(c.core.rob_entries, 224);
        assert_eq!(c.core.width, 4);
        assert!((c.core_freq_ghz() - 2.4).abs() < 1e-9);
        assert!((c.ctrl.device.peak_bandwidth_gbps() - 19.2).abs() < 1e-9);
        assert_eq!(c.ctrl.write_queue_cap, 32);
    }

    #[test]
    fn us_conversion_roundtrips() {
        let c = SystemConfig::paper_default(1);
        // 1 µs at 1.2 GHz = 1200 cycles.
        assert_eq!(c.us_to_cycles(1.0), 1200);
    }

    #[test]
    fn invalid_configs_return_typed_errors() {
        let mut c = SystemConfig::paper_default(1);
        c.n_cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoCores));

        let mut c = SystemConfig::paper_default(1);
        c.core_clock_mult = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroClockMultiplier));

        let mut c = SystemConfig::paper_default(1);
        c.sample_period = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSamplePeriod));

        let mut c = SystemConfig::paper_default(1);
        c.channels = 3;
        assert_eq!(c.validate(), Err(ConfigError::BadChannelCount(3)));

        let mut c = SystemConfig::paper_default(1);
        c.ctrl.device.timing.t_rc = 1; // < tRAS + tRP
        assert!(matches!(c.validate(), Err(ConfigError::Device(_))));
        // The message names the offending constraint.
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("t_rc"), "{msg}");
    }
}
