//! Simulation result types.

use serde::{Deserialize, Serialize};

use dramstack_audit::AuditReport;
use dramstack_core::{
    BandwidthStack, BwComponent, LatComponent, LatencyHistogram, LatencyStack, TimeSample,
};
use dramstack_cpu::{CacheStats, CycleStack, HierarchyStats};
use dramstack_dram::Cycle;
use dramstack_memctrl::CtrlStats;
use dramstack_obs::{DeltaStack, Diagnosis, PerfReport};

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Aggregate bandwidth stack over the whole run (system-level: the
    /// peak is the sum of the channel peaks).
    pub bandwidth_stack: BandwidthStack,
    /// Per-channel bandwidth stacks (one per memory controller).
    pub channel_stacks: Vec<BandwidthStack>,
    /// Aggregate latency stack over all reads.
    pub latency_stack: LatencyStack,
    /// Aggregate CPU cycle stack over all cores.
    pub cycle_stack: CycleStack,
    /// Through-time bandwidth/latency samples.
    pub samples: Vec<TimeSample>,
    /// Through-time CPU cycle stacks (aggregated over cores per window).
    pub cycle_samples: Vec<CycleStack>,
    /// DRAM cycles simulated.
    pub sim_cycles: Cycle,
    /// Simulated wall-clock time in microseconds.
    pub elapsed_us: f64,
    /// Memory-controller statistics.
    pub ctrl_stats: CtrlStats,
    /// Hierarchy statistics.
    pub hierarchy_stats: HierarchyStats,
    /// `(l1, l2, llc)` cache statistics.
    pub cache_stats: (CacheStats, CacheStats, CacheStats),
    /// Instructions retired, summed over cores.
    pub instrs_retired: u64,
    /// Distribution of individual read latencies (in DRAM cycles) — the
    /// stacks report averages; tails live here.
    pub latency_histogram: LatencyHistogram,
    /// Simulator self-profiling (host wall-clock time per drive-loop
    /// phase; all-zero unless profiling was enabled). Excluded by
    /// [`strip_perf`](Self::strip_perf) when comparing runs for
    /// determinism, since wall clocks differ even when results do not.
    pub perf: PerfReport,
    /// Shadow-auditor findings: protocol violations and broken
    /// stack-conservation invariants. Default (unarmed, empty) when the
    /// auditor was off; `audit.is_clean()` on an armed run certifies the
    /// run obeyed the JEDEC rules and the stacks conserved.
    pub audit: AuditReport,
    /// Bottleneck-advisor diagnoses: sustained stack shapes classified
    /// into named bottleneck classes with evidence and a suggestion.
    /// Derived deterministically from `samples` at report time.
    pub diagnoses: Vec<Diagnosis>,
}

impl SimReport {
    /// Achieved DRAM bandwidth in GB/s.
    pub fn achieved_gbps(&self) -> f64 {
        self.bandwidth_stack.achieved_gbps()
    }

    /// Average DRAM read latency in nanoseconds.
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.latency_stack.total_ns()
    }

    /// Aggregate instructions per cycle (per core).
    pub fn ipc(&self) -> f64 {
        let core_cycles = self.cycle_stack.total();
        if core_cycles == 0 {
            return 0.0;
        }
        self.instrs_retired as f64 / core_cycles as f64
    }

    /// A copy with the (host-dependent) self-profiling zeroed, so two
    /// runs of the same workload compare equal field-by-field.
    pub fn strip_perf(&self) -> SimReport {
        SimReport {
            perf: PerfReport::disabled(),
            ..self.clone()
        }
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error (unlikely for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// Typed failure from [`load_report`]: every variant carries the file it
/// came from, and parse failures pinpoint the offending line and column.
#[derive(Debug)]
pub enum ReportLoadError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// The underlying I/O error.
        err: std::io::Error,
    },
    /// The file is not valid report JSON (malformed syntax, a missing or
    /// mistyped field — e.g. a report written by an incompatible version).
    Parse {
        /// Path that failed.
        path: String,
        /// 1-based line of the first malformed token (0 when unknown).
        line: usize,
        /// 1-based column of the first malformed token (0 when unknown).
        column: usize,
        /// Parser message.
        msg: String,
    },
}

impl std::fmt::Display for ReportLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportLoadError::Io { path, err } => write!(f, "{path}: {err}"),
            ReportLoadError::Parse {
                path,
                line,
                column,
                msg,
            } => {
                if *line > 0 {
                    write!(f, "{path}:{line}:{column}: not a valid report: {msg}")
                } else {
                    write!(f, "{path}: not a valid report: {msg}")
                }
            }
        }
    }
}

impl std::error::Error for ReportLoadError {}

/// Converts a byte offset into 1-based (line, column).
fn line_col(text: &str, byte: usize) -> (usize, usize) {
    let upto = &text.as_bytes()[..byte.min(text.len())];
    let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
    let col = upto.len() - upto.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) + 1;
    (line, col)
}

/// Loads a [`SimReport`] from a JSON file with typed, located errors:
/// I/O failures name the file, malformed or schema-incompatible JSON
/// names the file plus the line/column of the first offending token.
pub fn load_report(path: &str) -> Result<SimReport, ReportLoadError> {
    let text = std::fs::read_to_string(path).map_err(|err| ReportLoadError::Io {
        path: path.to_string(),
        err,
    })?;
    serde_json::from_str(&text).map_err(|e| {
        let (line, column) = match e.byte_offset() {
            Some(b) => line_col(&text, b),
            None => (0, 0),
        };
        ReportLoadError::Parse {
            path: path.to_string(),
            line,
            column,
            msg: e.to_string(),
        }
    })
}

/// Compares two runs' aggregate stacks component-by-component, producing
/// `(bandwidth_delta, latency_delta)`.
///
/// The bandwidth delta is in GB/s per component (shares scaled by each
/// run's own peak, so configurations with different peaks compare in
/// absolute terms); the latency delta is in nanoseconds per component.
/// `threshold_frac` sets the significance floor as a fraction of the
/// *before* run's total (achieved GB/s and total ns respectively) — pass
/// e.g. `0.01` to mark sub-1% movements as noise.
pub fn diff_reports(
    before: &SimReport,
    after: &SimReport,
    threshold_frac: f64,
) -> (DeltaStack, DeltaStack) {
    let bw_rows = |r: &SimReport| -> Vec<(String, f64)> {
        BwComponent::ALL
            .iter()
            .map(|&c| (c.label().to_string(), r.bandwidth_stack.gbps(c)))
            .collect()
    };
    let lat_rows = |r: &SimReport| -> Vec<(String, f64)> {
        LatComponent::ALL
            .iter()
            .map(|&c| (c.label().to_string(), r.latency_stack.ns(c)))
            .collect()
    };
    let bw_threshold = threshold_frac * before.bandwidth_stack.peak_gbps().max(1e-12);
    let lat_threshold = threshold_frac * before.latency_stack.total_ns().max(1e-12);
    let bw = DeltaStack::compare(
        "bandwidth stack",
        "GB/s",
        &bw_rows(before),
        &bw_rows(after),
        bw_threshold,
    );
    let lat = DeltaStack::compare(
        "latency stack",
        "ns",
        &lat_rows(before),
        &lat_rows(after),
        lat_threshold,
    );
    (bw, lat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::BwComponent;

    fn dummy() -> SimReport {
        let mut bw = BandwidthStack::empty(19.2);
        bw.weights[BwComponent::Read.index()] = 500.0;
        bw.weights[BwComponent::Idle.index()] = 500.0;
        bw.total_cycles = 1000;
        SimReport {
            bandwidth_stack: bw,
            channel_stacks: Vec::new(),
            latency_stack: LatencyStack::empty(),
            cycle_stack: CycleStack::new(),
            samples: Vec::new(),
            cycle_samples: Vec::new(),
            sim_cycles: 1000,
            elapsed_us: 0.83,
            ctrl_stats: CtrlStats::default(),
            hierarchy_stats: HierarchyStats::default(),
            cache_stats: Default::default(),
            instrs_retired: 0,
            latency_histogram: LatencyHistogram::new(),
            perf: PerfReport::disabled(),
            audit: AuditReport::default(),
            diagnoses: Vec::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy();
        assert!((r.achieved_gbps() - 9.6).abs() < 1e-9);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.avg_read_latency_ns(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = dummy();
        let s = r.to_json().unwrap();
        let back: SimReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn diff_of_identical_reports_is_zero() {
        let r = dummy();
        let (bw, lat) = diff_reports(&r, &r, 0.01);
        assert!(bw.is_zero());
        assert!(lat.is_zero());
        assert!(bw.dominant().is_none());
    }

    #[test]
    fn diff_surfaces_the_dominant_changed_component() {
        let before = dummy();
        let mut after = dummy();
        // Shift 200 read cycles into idle: read bandwidth drops.
        after.bandwidth_stack.weights[BwComponent::Read.index()] = 300.0;
        after.bandwidth_stack.weights[BwComponent::Idle.index()] = 700.0;
        let (bw, _lat) = diff_reports(&before, &after, 0.01);
        let dominant = bw.dominant().expect("a dominant change");
        // Both read and idle moved by the same magnitude; either may rank
        // first, but both must be significant.
        assert!(dominant.label == "read" || dominant.label == "idle");
        assert_eq!(bw.significant().len(), 2);
        assert!(bw
            .significant()
            .iter()
            .any(|d| d.label == "read" && d.delta < 0.0));
    }

    #[test]
    fn strip_perf_zeroes_only_profiling() {
        let mut r = dummy();
        r.perf.enabled = true;
        r.perf.wall_seconds = 1.5;
        let s = r.strip_perf();
        assert_eq!(s.perf, PerfReport::disabled());
        assert_eq!(s.bandwidth_stack, r.bandwidth_stack);
        assert_eq!(s.sim_cycles, r.sim_cycles);
    }
}
