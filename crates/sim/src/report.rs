//! Simulation result types.

use serde::{Deserialize, Serialize};

use dramstack_audit::AuditReport;
use dramstack_core::{BandwidthStack, LatencyHistogram, LatencyStack, TimeSample};
use dramstack_cpu::{CacheStats, CycleStack, HierarchyStats};
use dramstack_dram::Cycle;
use dramstack_memctrl::CtrlStats;
use dramstack_obs::PerfReport;

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Aggregate bandwidth stack over the whole run (system-level: the
    /// peak is the sum of the channel peaks).
    pub bandwidth_stack: BandwidthStack,
    /// Per-channel bandwidth stacks (one per memory controller).
    pub channel_stacks: Vec<BandwidthStack>,
    /// Aggregate latency stack over all reads.
    pub latency_stack: LatencyStack,
    /// Aggregate CPU cycle stack over all cores.
    pub cycle_stack: CycleStack,
    /// Through-time bandwidth/latency samples.
    pub samples: Vec<TimeSample>,
    /// Through-time CPU cycle stacks (aggregated over cores per window).
    pub cycle_samples: Vec<CycleStack>,
    /// DRAM cycles simulated.
    pub sim_cycles: Cycle,
    /// Simulated wall-clock time in microseconds.
    pub elapsed_us: f64,
    /// Memory-controller statistics.
    pub ctrl_stats: CtrlStats,
    /// Hierarchy statistics.
    pub hierarchy_stats: HierarchyStats,
    /// `(l1, l2, llc)` cache statistics.
    pub cache_stats: (CacheStats, CacheStats, CacheStats),
    /// Instructions retired, summed over cores.
    pub instrs_retired: u64,
    /// Distribution of individual read latencies (in DRAM cycles) — the
    /// stacks report averages; tails live here.
    pub latency_histogram: LatencyHistogram,
    /// Simulator self-profiling (host wall-clock time per drive-loop
    /// phase; all-zero unless profiling was enabled). Excluded by
    /// [`strip_perf`](Self::strip_perf) when comparing runs for
    /// determinism, since wall clocks differ even when results do not.
    pub perf: PerfReport,
    /// Shadow-auditor findings: protocol violations and broken
    /// stack-conservation invariants. Default (unarmed, empty) when the
    /// auditor was off; `audit.is_clean()` on an armed run certifies the
    /// run obeyed the JEDEC rules and the stacks conserved.
    pub audit: AuditReport,
}

impl SimReport {
    /// Achieved DRAM bandwidth in GB/s.
    pub fn achieved_gbps(&self) -> f64 {
        self.bandwidth_stack.achieved_gbps()
    }

    /// Average DRAM read latency in nanoseconds.
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.latency_stack.total_ns()
    }

    /// Aggregate instructions per cycle (per core).
    pub fn ipc(&self) -> f64 {
        let core_cycles = self.cycle_stack.total();
        if core_cycles == 0 {
            return 0.0;
        }
        self.instrs_retired as f64 / core_cycles as f64
    }

    /// A copy with the (host-dependent) self-profiling zeroed, so two
    /// runs of the same workload compare equal field-by-field.
    pub fn strip_perf(&self) -> SimReport {
        SimReport {
            perf: PerfReport::disabled(),
            ..self.clone()
        }
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error (unlikely for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_core::BwComponent;

    fn dummy() -> SimReport {
        let mut bw = BandwidthStack::empty(19.2);
        bw.weights[BwComponent::Read.index()] = 500.0;
        bw.weights[BwComponent::Idle.index()] = 500.0;
        bw.total_cycles = 1000;
        SimReport {
            bandwidth_stack: bw,
            channel_stacks: Vec::new(),
            latency_stack: LatencyStack::empty(),
            cycle_stack: CycleStack::new(),
            samples: Vec::new(),
            cycle_samples: Vec::new(),
            sim_cycles: 1000,
            elapsed_us: 0.83,
            ctrl_stats: CtrlStats::default(),
            hierarchy_stats: HierarchyStats::default(),
            cache_stats: Default::default(),
            instrs_retired: 0,
            latency_histogram: LatencyHistogram::new(),
            perf: PerfReport::disabled(),
            audit: AuditReport::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy();
        assert!((r.achieved_gbps() - 9.6).abs() < 1e-9);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.avg_read_latency_ns(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = dummy();
        let s = r.to_json().unwrap();
        let back: SimReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn strip_perf_zeroes_only_profiling() {
        let mut r = dummy();
        r.perf.enabled = true;
        r.perf.wall_seconds = 1.5;
        let s = r.strip_perf();
        assert_eq!(s.perf, PerfReport::disabled());
        assert_eq!(s.bandwidth_stack, r.bandwidth_stack);
        assert_eq!(s.sim_cycles, r.sim_cycles);
    }
}
