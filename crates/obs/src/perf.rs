//! Wall-clock self-profiling of the simulator's drive loop.
//!
//! [`PhaseTimers`] accumulates host time per [`SimPhase`] of the step
//! loop and summarizes into a serializable [`PerfReport`]; when disabled
//! (the default), [`PhaseTimers::begin`] returns `None` and the hot loop
//! pays a single branch. [`Heartbeat`] produces an opt-in progress line
//! every N simulated cycles; the driver routes it through a
//! [`LogSink`](crate::LogSink) so it never interleaves with other output.
//!
//! None of this touches simulated state: profiling reads the host clock
//! only, so results are bit-identical whether or not it is enabled.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A phase of the simulator's per-cycle drive loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPhase {
    /// Memory-controller (and DRAM device) ticks.
    Ctrl,
    /// Delivering completed reads back to cores.
    Completions,
    /// Core model ticks.
    Cores,
    /// Pumping core requests into the controllers.
    Pump,
    /// Through-time sampling / window rolling.
    Sampling,
    /// Bulk idle-cycle fast-forwarding (event-skip spans).
    FastForward,
    /// Bulk stalled-but-busy span skipping (busy event horizon).
    BusyForward,
}

impl SimPhase {
    /// All phases, in loop order.
    pub const ALL: [SimPhase; 7] = [
        SimPhase::Ctrl,
        SimPhase::Completions,
        SimPhase::Cores,
        SimPhase::Pump,
        SimPhase::Sampling,
        SimPhase::FastForward,
        SimPhase::BusyForward,
    ];

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SimPhase::Ctrl => "ctrl",
            SimPhase::Completions => "completions",
            SimPhase::Cores => "cores",
            SimPhase::Pump => "pump",
            SimPhase::Sampling => "sampling",
            SimPhase::FastForward => "fast_forward",
            SimPhase::BusyForward => "busy_forward",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulates wall-clock time per [`SimPhase`].
///
/// Usage in the drive loop:
///
/// ```
/// # use dramstack_obs::{PhaseTimers, SimPhase};
/// let mut timers = PhaseTimers::new();
/// timers.enable();
/// let t = timers.begin();
/// // ... do the phase's work ...
/// timers.end(SimPhase::Ctrl, t);
/// assert!(timers.seconds(SimPhase::Ctrl) >= 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhaseTimers {
    enabled: bool,
    nanos: [u128; 7],
    started: Option<Instant>,
    wall_nanos: u128,
    ff_cycles: u64,
    busy_ff_cycles: u64,
}

impl PhaseTimers {
    /// Disabled timers (every `begin` is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns profiling on and starts the overall wall clock.
    pub fn enable(&mut self) {
        self.enabled = true;
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Whether profiling is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing a phase; returns `None` (for free) when disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends timing the phase started by [`begin`](Self::begin).
    #[inline]
    pub fn end(&mut self, phase: SimPhase, started: Option<Instant>) {
        if let Some(t) = started {
            self.nanos[phase.index()] += t.elapsed().as_nanos();
        }
    }

    /// Closes the phase running since `prev` and opens the next with a
    /// single clock read — for timing back-to-back phases in the hot step
    /// loop without a `begin`/`end` pair (two reads) per phase.
    #[inline]
    pub fn mark(&mut self, phase: SimPhase, prev: Option<Instant>) -> Option<Instant> {
        prev.map(|t| {
            let at = Instant::now();
            self.nanos[phase.index()] += at.duration_since(t).as_nanos();
            at
        })
    }

    /// Records `n` simulated cycles skipped by the event-skip fast-forward
    /// (tracked regardless of whether wall-clock profiling is enabled).
    #[inline]
    pub fn add_fast_forwarded(&mut self, n: u64) {
        self.ff_cycles += n;
    }

    /// Simulated cycles skipped by fast-forward so far.
    pub fn fast_forwarded(&self) -> u64 {
        self.ff_cycles
    }

    /// Records `n` simulated cycles covered by a stalled-but-busy span
    /// skip (tracked regardless of whether wall profiling is enabled).
    #[inline]
    pub fn add_busy_forwarded(&mut self, n: u64) {
        self.busy_ff_cycles += n;
    }

    /// Simulated cycles covered by busy-horizon skips so far.
    pub fn busy_forwarded(&self) -> u64 {
        self.busy_ff_cycles
    }

    /// Stops the overall wall clock (idempotent; called at report time).
    pub fn finish(&mut self) {
        if let Some(t) = self.started.take() {
            self.wall_nanos += t.elapsed().as_nanos();
        }
    }

    /// Seconds accumulated in a phase so far.
    pub fn seconds(&self, phase: SimPhase) -> f64 {
        self.nanos[phase.index()] as f64 / 1e9
    }

    /// Summarizes into a report for a run of `sim_cycles` DRAM cycles.
    pub fn report(&mut self, sim_cycles: u64) -> PerfReport {
        self.finish();
        let wall_seconds = self.wall_nanos as f64 / 1e9;
        PerfReport {
            enabled: self.enabled,
            wall_seconds,
            sim_cycles,
            sim_cycles_per_second: if wall_seconds > 0.0 {
                sim_cycles as f64 / wall_seconds
            } else {
                0.0
            },
            fast_forwarded_cycles: self.ff_cycles,
            busy_forwarded_cycles: self.busy_ff_cycles,
            phases: SimPhase::ALL
                .iter()
                .map(|p| (p.name().to_string(), self.seconds(*p)))
                .collect(),
        }
    }
}

/// Where the host time of a run went.
///
/// Carried in `SimReport::perf`. All-zero (with `enabled == false`) when
/// profiling was off; excluded from determinism comparisons because wall
/// clocks differ between runs even when simulation results do not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Whether profiling was enabled for the run.
    pub enabled: bool,
    /// Total wall-clock seconds of the drive loop.
    pub wall_seconds: f64,
    /// Simulated DRAM cycles covered.
    pub sim_cycles: u64,
    /// Simulation speed in simulated cycles per host second.
    pub sim_cycles_per_second: f64,
    /// Simulated cycles covered by the event-skip fast-forward rather than
    /// per-cycle stepping (recorded even when wall profiling is off).
    pub fast_forwarded_cycles: u64,
    /// Simulated cycles covered by stalled-but-busy horizon skips rather
    /// than per-cycle stepping (recorded even when wall profiling is off).
    pub busy_forwarded_cycles: u64,
    /// `(phase name, seconds)` per drive-loop phase, in loop order.
    pub phases: Vec<(String, f64)>,
}

impl PerfReport {
    /// A zeroed report (profiling off).
    pub fn disabled() -> Self {
        PerfReport {
            enabled: false,
            wall_seconds: 0.0,
            sim_cycles: 0,
            sim_cycles_per_second: 0.0,
            fast_forwarded_cycles: 0,
            busy_forwarded_cycles: 0,
            phases: Vec::new(),
        }
    }

    /// Seconds spent in the named phase (0 if absent).
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }
}

impl Default for PerfReport {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Opt-in progress line produced every `every_cycles` simulated cycles.
///
/// [`tick`](Self::tick) returns the formatted line instead of printing
/// it; the caller hands it to a [`LogSink`](crate::LogSink) (or the
/// telemetry layer) so heartbeats, dashboard frames and logs never
/// interleave mid-line.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    every_cycles: u64,
    next_at: u64,
    started: Instant,
    beats: u64,
}

impl Heartbeat {
    /// A heartbeat firing every `every_cycles` cycles (min 1).
    pub fn new(every_cycles: u64) -> Self {
        let every_cycles = every_cycles.max(1);
        Heartbeat {
            every_cycles,
            next_at: every_cycles,
            started: Instant::now(),
            beats: 0,
        }
    }

    /// Whether [`tick`](Self::tick) would beat at `cycle`. Callers use
    /// this to skip computing the (possibly expensive) `reads_done`
    /// argument on the overwhelming majority of off-interval cycles.
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_at
    }

    /// Called once per simulated cycle; returns the progress line on
    /// beat cycles, `None` otherwise. The caller owns delivery (via a
    /// [`LogSink`](crate::LogSink)); this type never writes directly.
    #[inline]
    pub fn tick(&mut self, cycle: u64, reads_done: u64) -> Option<String> {
        if cycle < self.next_at {
            return None;
        }
        self.next_at += self.every_cycles;
        self.beats += 1;
        let secs = self.started.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { cycle as f64 / secs } else { 0.0 };
        Some(format!(
            "[dramstack] cycle {cycle} | {reads_done} reads done | {rate:.0} sim-cycles/s"
        ))
    }

    /// Number of lines produced so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timers_record_nothing() {
        let mut t = PhaseTimers::new();
        let h = t.begin();
        assert!(h.is_none());
        t.end(SimPhase::Ctrl, h);
        assert_eq!(t.seconds(SimPhase::Ctrl), 0.0);
        let r = t.report(1000);
        assert!(!r.enabled);
        assert_eq!(r.wall_seconds, 0.0);
        assert_eq!(r.sim_cycles_per_second, 0.0);
    }

    #[test]
    fn enabled_timers_accumulate_per_phase() {
        let mut t = PhaseTimers::new();
        t.enable();
        let h = t.begin();
        assert!(h.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end(SimPhase::Cores, h);
        assert!(t.seconds(SimPhase::Cores) > 0.0);
        assert_eq!(t.seconds(SimPhase::Pump), 0.0);
        let r = t.report(5000);
        assert!(r.enabled);
        assert!(r.wall_seconds > 0.0);
        assert!(r.sim_cycles_per_second > 0.0);
        assert_eq!(r.sim_cycles, 5000);
        assert!(r.phase_seconds("cores") > 0.0);
        assert_eq!(r.phases.len(), 7);
    }

    #[test]
    fn mark_chains_attribute_to_the_closed_phase() {
        let mut t = PhaseTimers::new();
        t.enable();
        let h = t.begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let h = t.mark(SimPhase::Ctrl, h);
        let h = t.mark(SimPhase::Completions, h);
        t.end(SimPhase::Cores, h);
        assert!(t.seconds(SimPhase::Ctrl) > 0.0);
        // Disabled timers mark for free.
        let mut off = PhaseTimers::new();
        assert!(off.mark(SimPhase::Ctrl, None).is_none());
        assert_eq!(off.seconds(SimPhase::Ctrl), 0.0);
    }

    #[test]
    fn busy_forwarded_cycles_are_recorded() {
        let mut t = PhaseTimers::new();
        t.add_busy_forwarded(250);
        t.add_busy_forwarded(50);
        assert_eq!(t.busy_forwarded(), 300);
        let r = t.report(1_000);
        assert_eq!(r.busy_forwarded_cycles, 300);
    }

    #[test]
    fn fast_forwarded_cycles_are_recorded_even_when_disabled() {
        let mut t = PhaseTimers::new();
        t.add_fast_forwarded(1_000);
        t.add_fast_forwarded(500);
        assert_eq!(t.fast_forwarded(), 1_500);
        let r = t.report(2_000);
        assert!(!r.enabled);
        assert_eq!(r.fast_forwarded_cycles, 1_500);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut t = PhaseTimers::new();
        t.enable();
        let r = t.report(123);
        let json = serde_json::to_string(&r).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn disabled_report_is_default() {
        assert_eq!(PerfReport::default(), PerfReport::disabled());
        assert_eq!(PerfReport::default().phase_seconds("ctrl"), 0.0);
    }

    #[test]
    fn heartbeat_fires_on_schedule() {
        let mut hb = Heartbeat::new(100);
        assert!(!hb.due(50));
        assert!(hb.tick(50, 0).is_none());
        assert!(hb.due(100));
        let line = hb.tick(100, 10).expect("beat at 100");
        assert!(line.contains("cycle 100"), "{line}");
        assert!(line.contains("10 reads done"), "{line}");
        assert!(!hb.due(150));
        assert!(hb.tick(150, 12).is_none());
        assert!(hb.due(205));
        assert!(hb.tick(205, 20).is_some());
        assert_eq!(hb.beats(), 2);
    }
}
