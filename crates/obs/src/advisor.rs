//! Automated bottleneck advisor: the paper's diagnosis logic as code.
//!
//! The whole point of a bandwidth/latency stack is that its shape tells
//! you what to fix. This module encodes that reading as deterministic
//! rules over per-window stack shares: each sample window is classified
//! into a [`BottleneckClass`] (or none), hysteresis across windows
//! suppresses single-window noise, and sustained conditions are emitted
//! as typed [`Diagnosis`] records carrying the evidence and the paper's
//! suggested remedy.
//!
//! The advisor consumes a neutral [`WindowObservation`] of named shares
//! rather than the stack types themselves, so it can run here — below the
//! stack crates in the dependency order — and be fed by any of them.

use serde::{Deserialize, Serialize};

/// Stack shares and controller health of one sample window, normalized
/// so the advisor needs no knowledge of the stack types.
///
/// Bandwidth shares are fractions of peak bandwidth and sum to ~1;
/// latency shares are fractions of the window's mean read latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Cycles covered.
    pub cycles: u64,
    /// Useful data-transfer share (read + write bursts).
    pub bw_data: f64,
    /// Refresh share of the bandwidth stack.
    pub bw_refresh: f64,
    /// Precharge share.
    pub bw_precharge: f64,
    /// Activate share.
    pub bw_activate: f64,
    /// Timing-constraint share (tFAW, tRRD, tCCD, bus turnaround).
    pub bw_constraints: f64,
    /// Idle share (no request waiting).
    pub bw_idle: f64,
    /// Latency share of queueing.
    pub lat_queue: f64,
    /// Latency share of refresh stalls.
    pub lat_refresh: f64,
    /// Latency share of write-drain stalls.
    pub lat_writeburst: f64,
    /// Latency share of precharge/activate serialization.
    pub lat_preact: f64,
    /// Row-buffer hit rate of the window's CAS commands.
    pub row_hit_rate: f64,
    /// Fraction of cycles spent in write-drain mode.
    pub drain_occupancy: f64,
    /// Mean read-queue depth over the window.
    pub mean_read_queue_depth: f64,
    /// Reads completed in the window.
    pub reads: u64,
}

impl WindowObservation {
    /// An all-zero observation (useful as a builder base in tests).
    pub fn zero() -> Self {
        WindowObservation {
            start_cycle: 0,
            cycles: 0,
            bw_data: 0.0,
            bw_refresh: 0.0,
            bw_precharge: 0.0,
            bw_activate: 0.0,
            bw_constraints: 0.0,
            bw_idle: 0.0,
            lat_queue: 0.0,
            lat_refresh: 0.0,
            lat_writeburst: 0.0,
            lat_preact: 0.0,
            row_hit_rate: 0.0,
            drain_occupancy: 0.0,
            mean_read_queue_depth: 0.0,
            reads: 0,
        }
    }
}

/// The bottleneck classes the advisor can diagnose, mirroring the
/// paper's reading of stack shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BottleneckClass {
    /// Refresh occupies far more than its nominal tRFC/tREFI share.
    RefreshBound,
    /// Write drains stall reads for a significant share of time.
    WriteDrainBound,
    /// The data bus is (nearly) fully utilized: the bandwidth ceiling.
    Saturated,
    /// Precharge/activate dominate with a poor row-hit rate.
    RowConflictBound,
    /// Activate-rate limits (tFAW/tRRD) and other timing constraints
    /// dominate despite decent locality.
    ActivateBound,
    /// DRAM sits idle because too few requests arrive.
    RequestLimited,
    /// Achieved bandwidth diverges across channels: the address mapping
    /// concentrates traffic on a subset of them.
    ChannelImbalance,
}

impl BottleneckClass {
    /// Every class, in diagnosis priority order.
    pub const ALL: [BottleneckClass; 7] = [
        BottleneckClass::RefreshBound,
        BottleneckClass::WriteDrainBound,
        BottleneckClass::Saturated,
        BottleneckClass::RowConflictBound,
        BottleneckClass::ActivateBound,
        BottleneckClass::RequestLimited,
        BottleneckClass::ChannelImbalance,
    ];

    /// Stable lowercase name used in reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            BottleneckClass::RefreshBound => "refresh-bound",
            BottleneckClass::WriteDrainBound => "write-drain-bound",
            BottleneckClass::Saturated => "saturated",
            BottleneckClass::RowConflictBound => "row-conflict-bound",
            BottleneckClass::ActivateBound => "activate-bound",
            BottleneckClass::RequestLimited => "request-limited",
            BottleneckClass::ChannelImbalance => "channel-imbalance",
        }
    }

    /// The paper's suggested remedy for this bottleneck.
    pub fn suggestion(self) -> &'static str {
        match self {
            BottleneckClass::RefreshBound => {
                "refresh dominates: raise tREFI (temperature allowing), use \
                 per-bank refresh, or spread traffic over more ranks"
            }
            BottleneckClass::WriteDrainBound => {
                "write drains stall reads: enlarge the write queue or widen \
                 the drain hysteresis watermarks"
            }
            BottleneckClass::Saturated => {
                "the data bus is the bottleneck: add channels, reduce \
                 traffic, or accept the bandwidth ceiling"
            }
            BottleneckClass::RowConflictBound => {
                "row conflicts dominate: improve locality, try another \
                 address mapping, or a different page policy"
            }
            BottleneckClass::ActivateBound => {
                "activate-rate limited (tFAW/tRRD): spread accesses across \
                 bank groups or increase row reuse"
            }
            BottleneckClass::RequestLimited => {
                "DRAM is under-used: issue more parallel requests (more \
                 cores, deeper MLP, prefetching)"
            }
            BottleneckClass::ChannelImbalance => {
                "channels are unevenly loaded: pick an address mapping that \
                 interleaves the hot stride across channels (e.g. hash or \
                 permute the channel bits)"
            }
        }
    }
}

impl std::fmt::Display for BottleneckClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One sustained bottleneck diagnosed over a span of windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The diagnosed bottleneck class.
    pub class: BottleneckClass,
    /// Index of the first window of the sustained span.
    pub first_window: usize,
    /// Number of windows the condition held.
    pub windows: usize,
    /// First cycle of the span.
    pub start_cycle: u64,
    /// Human-readable evidence (the shares that triggered the rule,
    /// averaged over the span).
    pub evidence: String,
    /// The paper's suggested remedy.
    pub suggestion: String,
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} over {} window(s) from window {}: {} — {}",
            self.class, self.windows, self.first_window, self.evidence, self.suggestion
        )
    }
}

/// Thresholds and hysteresis of the rule set. The defaults encode the
/// paper's qualitative reading of stack shapes (e.g. refresh nominally
/// costs tRFC/tREFI ≈ 4.5 %; triple that is anomalous).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Consecutive windows a class must hold before a diagnosis opens,
    /// and must lapse before it closes (noise suppression).
    pub hysteresis_windows: usize,
    /// Refresh bandwidth share that flags refresh-bound.
    pub refresh_share: f64,
    /// Write-drain occupancy (or latency share) that flags drain-bound.
    pub drain_share: f64,
    /// Data share of peak that counts as saturated.
    pub saturated_share: f64,
    /// Combined precharge+activate share that flags conflict-bound.
    pub preact_share: f64,
    /// Row-hit rate below which pre/act pressure reads as conflicts.
    pub conflict_hit_rate: f64,
    /// Constraint share that flags activate/tFAW-bound.
    pub constraint_share: f64,
    /// Idle share above which a window is request-limited.
    pub idle_share: f64,
    /// Busiest-to-laziest channel data-share ratio that flags a window
    /// as channel-imbalanced (cross-channel rule).
    pub imbalance_ratio: f64,
    /// Minimum data share the busiest channel must carry before skew is
    /// worth flagging — keeps near-idle runs quiet, where tiny absolute
    /// differences produce huge ratios.
    pub imbalance_min_share: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            hysteresis_windows: 3,
            refresh_share: 0.12,
            drain_share: 0.20,
            saturated_share: 0.70,
            preact_share: 0.15,
            conflict_hit_rate: 0.60,
            constraint_share: 0.20,
            idle_share: 0.60,
            imbalance_ratio: 2.0,
            imbalance_min_share: 0.10,
        }
    }
}

/// Streaming bottleneck classifier with hysteresis.
///
/// Feed one [`WindowObservation`] per sample window via
/// [`observe`](Advisor::observe); sustained conditions accumulate and
/// [`finish`](Advisor::finish) returns them. [`current`](Advisor::current)
/// exposes the open diagnosis for live display.
#[derive(Debug, Clone)]
pub struct Advisor {
    cfg: AdvisorConfig,
    window: usize,
    /// Candidate class and its consecutive-window streak (pre-diagnosis).
    candidate: Option<(BottleneckClass, usize)>,
    /// Open diagnosis span, if any.
    open: Option<OpenSpan>,
    done: Vec<Diagnosis>,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    class: BottleneckClass,
    first_window: usize,
    start_cycle: u64,
    windows: usize,
    /// Consecutive non-matching windows (closes at hysteresis).
    lapse: usize,
    /// Running sums for the evidence line.
    sum_primary: f64,
    sum_secondary: f64,
}

impl Advisor {
    /// An advisor with the given rule thresholds.
    pub fn new(cfg: AdvisorConfig) -> Self {
        Advisor {
            cfg,
            window: 0,
            candidate: None,
            open: None,
            done: Vec::new(),
        }
    }

    /// Classifies one window (no hysteresis); `None` means healthy.
    pub fn classify(&self, w: &WindowObservation) -> Option<BottleneckClass> {
        let c = &self.cfg;
        // Priority order: specific pathologies before the generic
        // saturated/request-limited endpoints.
        if w.bw_refresh >= c.refresh_share || w.lat_refresh >= 2.0 * c.refresh_share {
            return Some(BottleneckClass::RefreshBound);
        }
        if w.drain_occupancy >= c.drain_share || w.lat_writeburst >= c.drain_share {
            return Some(BottleneckClass::WriteDrainBound);
        }
        if w.bw_data >= c.saturated_share {
            return Some(BottleneckClass::Saturated);
        }
        let preact = w.bw_precharge + w.bw_activate;
        if preact >= c.preact_share && w.row_hit_rate < c.conflict_hit_rate {
            return Some(BottleneckClass::RowConflictBound);
        }
        if w.bw_constraints >= c.constraint_share
            || (w.bw_activate + w.bw_constraints >= c.constraint_share
                && w.row_hit_rate >= c.conflict_hit_rate)
        {
            return Some(BottleneckClass::ActivateBound);
        }
        if w.bw_idle >= c.idle_share && w.mean_read_queue_depth < 1.0 && w.reads > 0 {
            return Some(BottleneckClass::RequestLimited);
        }
        None
    }

    /// Evidence inputs for `class` from one window: the primary share the
    /// rule fired on plus a secondary corroborating figure.
    fn evidence_inputs(w: &WindowObservation, class: BottleneckClass) -> (f64, f64) {
        match class {
            BottleneckClass::RefreshBound => (w.bw_refresh, w.lat_refresh),
            BottleneckClass::WriteDrainBound => (w.drain_occupancy, w.lat_writeburst),
            BottleneckClass::Saturated => (w.bw_data, w.mean_read_queue_depth),
            BottleneckClass::RowConflictBound => (w.bw_precharge + w.bw_activate, w.row_hit_rate),
            BottleneckClass::ActivateBound => (w.bw_constraints, w.row_hit_rate),
            BottleneckClass::RequestLimited => (w.bw_idle, w.mean_read_queue_depth),
            // Cross-channel: a single observation carries no cross-channel
            // view; `diagnose_channel_imbalance` assembles the real
            // evidence from the per-channel series.
            BottleneckClass::ChannelImbalance => (w.bw_data, 0.0),
        }
    }

    fn evidence_line(class: BottleneckClass, primary: f64, secondary: f64) -> String {
        match class {
            BottleneckClass::RefreshBound => format!(
                "refresh takes {:.1} % of peak bandwidth ({:.1} % of read latency); nominal is ~4.5 %",
                primary * 100.0,
                secondary * 100.0
            ),
            BottleneckClass::WriteDrainBound => format!(
                "write drains occupy {:.1} % of cycles ({:.1} % of read latency)",
                primary * 100.0,
                secondary * 100.0
            ),
            BottleneckClass::Saturated => format!(
                "data transfers use {:.1} % of peak bandwidth at mean read-queue depth {:.1}",
                primary * 100.0,
                secondary
            ),
            BottleneckClass::RowConflictBound => format!(
                "precharge+activate take {:.1} % of peak with a {:.1} % row-hit rate",
                primary * 100.0,
                secondary * 100.0
            ),
            BottleneckClass::ActivateBound => format!(
                "timing constraints block {:.1} % of peak at a {:.1} % row-hit rate",
                primary * 100.0,
                secondary * 100.0
            ),
            BottleneckClass::RequestLimited => format!(
                "DRAM idles {:.1} % of peak with mean read-queue depth {:.2}",
                primary * 100.0,
                secondary
            ),
            BottleneckClass::ChannelImbalance => format!(
                "per-channel data shares diverge (flagged channel at {:.1} % of peak)",
                primary * 100.0
            ),
        }
    }

    /// Feeds one window. Returns the class of any diagnosis that *closed*
    /// on this window (rarely needed; most callers poll
    /// [`current`](Advisor::current) or read [`finish`](Advisor::finish)).
    pub fn observe(&mut self, w: &WindowObservation) -> Option<BottleneckClass> {
        let class = self.classify(w);
        let idx = self.window;
        self.window += 1;
        let mut closed = None;

        if let Some(span) = &mut self.open {
            if class == Some(span.class) {
                span.windows += 1;
                span.lapse = 0;
                let (p, s) = Self::evidence_inputs(w, span.class);
                span.sum_primary += p;
                span.sum_secondary += s;
            } else {
                span.lapse += 1;
                if span.lapse >= self.cfg.hysteresis_windows {
                    closed = Some(span.class);
                    self.close_open();
                }
            }
        }
        if self.open.is_none() {
            match (class, self.candidate) {
                (Some(c), Some((cand, streak))) if c == cand => {
                    let streak = streak + 1;
                    if streak >= self.cfg.hysteresis_windows {
                        let (p, s) = Self::evidence_inputs(w, c);
                        self.open = Some(OpenSpan {
                            class: c,
                            first_window: idx + 1 - streak,
                            start_cycle: w.start_cycle,
                            windows: streak,
                            lapse: 0,
                            // Seed the running evidence with the streak's
                            // last window; earlier ones are close by
                            // construction (same class held).
                            sum_primary: p * streak as f64,
                            sum_secondary: s * streak as f64,
                        });
                        self.candidate = None;
                    } else {
                        self.candidate = Some((c, streak));
                    }
                }
                (Some(c), _) => self.candidate = Some((c, 1)),
                (None, _) => self.candidate = None,
            }
        }
        closed
    }

    fn close_open(&mut self) {
        if let Some(span) = self.open.take() {
            let n = span.windows.max(1) as f64;
            self.done.push(Diagnosis {
                class: span.class,
                first_window: span.first_window,
                windows: span.windows,
                start_cycle: span.start_cycle,
                evidence: Self::evidence_line(
                    span.class,
                    span.sum_primary / n,
                    span.sum_secondary / n,
                ),
                suggestion: span.class.suggestion().to_string(),
            });
        }
    }

    /// The class of the currently open (sustained, not yet closed)
    /// diagnosis, for live display.
    pub fn current(&self) -> Option<BottleneckClass> {
        self.open.as_ref().map(|s| s.class)
    }

    /// Closes any open span and returns every diagnosis, in onset order.
    pub fn finish(mut self) -> Vec<Diagnosis> {
        self.close_open();
        self.done
    }
}

/// Runs the advisor over a complete observation series.
pub fn diagnose(windows: &[WindowObservation], cfg: AdvisorConfig) -> Vec<Diagnosis> {
    let mut a = Advisor::new(cfg);
    for w in windows {
        a.observe(w);
    }
    a.finish()
}

/// Open span of the cross-channel imbalance rule: window bookkeeping plus
/// a running per-channel data-share sum for the evidence line.
struct ImbalanceSpan {
    first_window: usize,
    start_cycle: u64,
    windows: usize,
    lapse: usize,
    sum_share: Vec<f64>,
}

impl ImbalanceSpan {
    fn close(self) -> Diagnosis {
        let n = self.windows.max(1) as f64;
        let means: Vec<f64> = self.sum_share.iter().map(|s| s / n).collect();
        let (busiest, bmean) = means
            .iter()
            .copied()
            .enumerate()
            .fold((0, f64::MIN), |a, b| if b.1 > a.1 { b } else { a });
        let (laziest, lmean) = means
            .iter()
            .copied()
            .enumerate()
            .fold((0, f64::MAX), |a, b| if b.1 < a.1 { b } else { a });
        let skew = if lmean > 0.0 {
            format!(" ({:.1}x skew)", bmean / lmean)
        } else {
            String::new()
        };
        Diagnosis {
            class: BottleneckClass::ChannelImbalance,
            first_window: self.first_window,
            windows: self.windows,
            start_cycle: self.start_cycle,
            evidence: format!(
                "channel {busiest} averages {:.1} % of peak data vs {:.1} % on channel {laziest}{skew}",
                bmean * 100.0,
                lmean * 100.0,
            ),
            suggestion: BottleneckClass::ChannelImbalance.suggestion().to_string(),
        }
    }
}

/// Runs the cross-channel imbalance rule over per-channel observation
/// series — one window-aligned series per channel, as produced by
/// per-channel samplers sharing a window clock.
///
/// A window is imbalanced when the busiest channel's data share is at
/// least `imbalance_min_share` of its peak and at least `imbalance_ratio`
/// times the laziest channel's. The same hysteresis as the single-series
/// rules suppresses transient skew (e.g. one channel refreshing).
pub fn diagnose_channel_imbalance(
    per_channel: &[&[WindowObservation]],
    cfg: AdvisorConfig,
) -> Vec<Diagnosis> {
    let channels = per_channel.len();
    if channels < 2 {
        return Vec::new();
    }
    let windows = per_channel.iter().map(|s| s.len()).min().unwrap_or(0);
    let mut done = Vec::new();
    let mut streak = 0usize;
    let mut open: Option<ImbalanceSpan> = None;
    for i in 0..windows {
        let shares: Vec<f64> = per_channel.iter().map(|s| s[i].bw_data).collect();
        let busiest = shares.iter().copied().fold(0.0_f64, f64::max);
        let laziest = shares.iter().copied().fold(f64::INFINITY, f64::min);
        let skewed = busiest >= cfg.imbalance_min_share && busiest >= cfg.imbalance_ratio * laziest;
        if let Some(span) = &mut open {
            if skewed {
                span.windows += 1;
                span.lapse = 0;
                for (sum, s) in span.sum_share.iter_mut().zip(&shares) {
                    *sum += s;
                }
            } else {
                span.lapse += 1;
                if span.lapse >= cfg.hysteresis_windows {
                    done.push(open.take().unwrap().close());
                }
            }
            continue;
        }
        if skewed {
            streak += 1;
            if streak >= cfg.hysteresis_windows {
                let first_window = i + 1 - streak;
                open = Some(ImbalanceSpan {
                    first_window,
                    start_cycle: per_channel[0][first_window].start_cycle,
                    windows: streak,
                    lapse: 0,
                    // Seed the evidence with the streak's last window;
                    // earlier ones are close by construction.
                    sum_share: shares.iter().map(|s| s * streak as f64).collect(),
                });
                streak = 0;
            }
        } else {
            streak = 0;
        }
    }
    if let Some(span) = open {
        done.push(span.close());
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh_heavy(i: u64) -> WindowObservation {
        WindowObservation {
            start_cycle: i * 1000,
            cycles: 1000,
            bw_refresh: 0.25,
            lat_refresh: 0.4,
            bw_data: 0.3,
            reads: 50,
            ..WindowObservation::zero()
        }
    }

    fn healthy(i: u64) -> WindowObservation {
        WindowObservation {
            start_cycle: i * 1000,
            cycles: 1000,
            bw_data: 0.4,
            bw_refresh: 0.045,
            bw_idle: 0.3,
            mean_read_queue_depth: 3.0,
            row_hit_rate: 0.9,
            reads: 50,
            ..WindowObservation::zero()
        }
    }

    #[test]
    fn sustained_refresh_pressure_is_diagnosed() {
        let obs: Vec<_> = (0..10).map(refresh_heavy).collect();
        let d = diagnose(&obs, AdvisorConfig::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].class, BottleneckClass::RefreshBound);
        assert_eq!(d[0].first_window, 0);
        assert_eq!(d[0].windows, 10);
        assert!(d[0].evidence.contains("refresh"), "{}", d[0].evidence);
        assert!(!d[0].suggestion.is_empty());
    }

    #[test]
    fn single_window_blips_are_suppressed() {
        // healthy, one bad window, healthy: hysteresis of 3 keeps quiet.
        let mut obs: Vec<_> = (0..10).map(healthy).collect();
        obs[4] = refresh_heavy(4);
        let d = diagnose(&obs, AdvisorConfig::default());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn diagnosis_survives_short_lapses() {
        // 4 bad, 1 healthy, 4 bad: one diagnosis spanning 8 bad windows,
        // not two — the 1-window lapse is inside the hysteresis.
        let mut obs: Vec<_> = (0..9).map(refresh_heavy).collect();
        obs[4] = healthy(4);
        let d = diagnose(&obs, AdvisorConfig::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].windows, 8);
    }

    #[test]
    fn distinct_phases_get_distinct_diagnoses() {
        let mut obs: Vec<_> = (0..6).map(refresh_heavy).collect();
        // A clearly saturated phase, separated by enough healthy windows.
        for i in 6..12 {
            obs.push(healthy(i));
        }
        for i in 12..18 {
            obs.push(WindowObservation {
                start_cycle: i * 1000,
                cycles: 1000,
                bw_data: 0.85,
                mean_read_queue_depth: 20.0,
                row_hit_rate: 0.8,
                reads: 300,
                ..WindowObservation::zero()
            });
        }
        let d = diagnose(&obs, AdvisorConfig::default());
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].class, BottleneckClass::RefreshBound);
        assert_eq!(d[1].class, BottleneckClass::Saturated);
        assert!(d[1].first_window >= 12);
    }

    #[test]
    fn request_limited_requires_idle_and_shallow_queue() {
        let w = WindowObservation {
            bw_idle: 0.8,
            mean_read_queue_depth: 0.2,
            reads: 10,
            ..WindowObservation::zero()
        };
        let a = Advisor::new(AdvisorConfig::default());
        assert_eq!(a.classify(&w), Some(BottleneckClass::RequestLimited));
        // Deep queues mean the idle is someone else's fault.
        let busy_queue = WindowObservation {
            mean_read_queue_depth: 8.0,
            ..w
        };
        assert_eq!(a.classify(&busy_queue), None);
    }

    #[test]
    fn conflict_and_activate_bound_split_on_hit_rate() {
        let a = Advisor::new(AdvisorConfig::default());
        let conflicts = WindowObservation {
            bw_precharge: 0.12,
            bw_activate: 0.10,
            row_hit_rate: 0.2,
            bw_data: 0.3,
            reads: 100,
            ..WindowObservation::zero()
        };
        assert_eq!(
            a.classify(&conflicts),
            Some(BottleneckClass::RowConflictBound)
        );
        let faw = WindowObservation {
            bw_constraints: 0.3,
            row_hit_rate: 0.9,
            bw_data: 0.4,
            reads: 100,
            ..WindowObservation::zero()
        };
        assert_eq!(a.classify(&faw), Some(BottleneckClass::ActivateBound));
    }

    #[test]
    fn current_exposes_open_diagnosis_for_live_display() {
        let mut a = Advisor::new(AdvisorConfig::default());
        assert!(a.current().is_none());
        for i in 0..5 {
            a.observe(&refresh_heavy(i));
        }
        assert_eq!(a.current(), Some(BottleneckClass::RefreshBound));
        let d = a.finish();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn class_names_and_suggestions_are_stable() {
        for c in BottleneckClass::ALL {
            assert!(!c.name().is_empty());
            assert!(!c.suggestion().is_empty());
            assert_eq!(c.to_string(), c.name());
        }
    }

    fn channel_series(share: f64, n: u64) -> Vec<WindowObservation> {
        (0..n)
            .map(|i| WindowObservation {
                start_cycle: i * 1000,
                cycles: 1000,
                bw_data: share,
                reads: (share * 100.0) as u64,
                ..WindowObservation::zero()
            })
            .collect()
    }

    #[test]
    fn sustained_channel_skew_is_diagnosed() {
        let hot = channel_series(0.48, 8);
        let cold = channel_series(0.02, 8);
        let d = diagnose_channel_imbalance(&[&hot, &cold], AdvisorConfig::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].class, BottleneckClass::ChannelImbalance);
        assert_eq!(d[0].first_window, 0);
        assert_eq!(d[0].windows, 8);
        assert!(d[0].evidence.contains("channel 0"), "{}", d[0].evidence);
        assert!(d[0].evidence.contains("channel 1"), "{}", d[0].evidence);
        assert!(d[0].evidence.contains("skew"), "{}", d[0].evidence);
    }

    #[test]
    fn balanced_channels_stay_quiet() {
        let a = channel_series(0.40, 8);
        let b = channel_series(0.35, 8);
        let d = diagnose_channel_imbalance(&[&a, &b], AdvisorConfig::default());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn idle_channels_are_not_flagged_despite_huge_ratios() {
        // 0.04 vs 0.001 is a 40x ratio, but the busiest channel is far
        // below `imbalance_min_share`: nothing worth rebalancing.
        let a = channel_series(0.04, 8);
        let b = channel_series(0.001, 8);
        let d = diagnose_channel_imbalance(&[&a, &b], AdvisorConfig::default());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transient_skew_is_suppressed_by_hysteresis() {
        let mut hot = channel_series(0.38, 10);
        let cold = channel_series(0.36, 10);
        // Two skewed windows (below the 3-window hysteresis) stay quiet.
        hot[4].bw_data = 0.8;
        hot[5].bw_data = 0.8;
        let d = diagnose_channel_imbalance(&[&hot, &cold], AdvisorConfig::default());
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn one_dead_channel_is_reported_without_a_ratio() {
        let hot = channel_series(0.50, 6);
        let dead = channel_series(0.0, 6);
        let d = diagnose_channel_imbalance(&[&hot, &dead], AdvisorConfig::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].evidence.contains("0.0 % on channel 1"),
            "{}",
            d[0].evidence
        );
        assert!(!d[0].evidence.contains("skew"), "{}", d[0].evidence);
    }

    #[test]
    fn single_channel_series_never_imbalanced() {
        let only = channel_series(0.9, 8);
        let d = diagnose_channel_imbalance(&[&only], AdvisorConfig::default());
        assert!(d.is_empty());
    }

    #[test]
    fn diagnosis_roundtrips_through_json() {
        let obs: Vec<_> = (0..5).map(refresh_heavy).collect();
        let d = diagnose(&obs, AdvisorConfig::default());
        let json = serde_json::to_string(&d).unwrap();
        let back: Vec<Diagnosis> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
