//! Per-sampling-window controller health, attached to every
//! through-time sample.

use serde::{Deserialize, Serialize};

use crate::metrics::HistogramSnapshot;

/// Bucket edges used for the per-window queue-depth histograms.
pub const QUEUE_DEPTH_BOUNDS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

/// Controller-health metrics for one sampling window, built by the stack
/// sampler from the per-cycle [`CycleView`](dramstack_dram::CycleView)
/// fields the controller now exports.
///
/// These complement the bandwidth/latency stacks of the same window: the
/// stacks say where the window's cycles *went*, these say what the
/// controller *looked like* while it spent them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtrlWindowStats {
    /// Cycles covered by the window.
    pub cycles: u64,
    /// CAS commands issued in the window.
    pub cas: u64,
    /// CAS commands that hit an open row.
    pub cas_hits: u64,
    /// Cycles spent in write-drain mode.
    pub drain_cycles: u64,
    /// Distribution of the read-queue depth, sampled every cycle.
    pub read_queue_depth: HistogramSnapshot,
    /// Distribution of the write-queue depth, sampled every cycle.
    pub write_queue_depth: HistogramSnapshot,
}

impl CtrlWindowStats {
    /// An empty window.
    pub fn empty() -> Self {
        CtrlWindowStats {
            cycles: 0,
            cas: 0,
            cas_hits: 0,
            drain_cycles: 0,
            read_queue_depth: HistogramSnapshot::new(&QUEUE_DEPTH_BOUNDS),
            write_queue_depth: HistogramSnapshot::new(&QUEUE_DEPTH_BOUNDS),
        }
    }

    /// Row-buffer hit rate over the window's CAS commands, in `[0, 1]`
    /// (0 when no CAS issued).
    pub fn row_hit_rate(&self) -> f64 {
        if self.cas == 0 {
            return 0.0;
        }
        self.cas_hits as f64 / self.cas as f64
    }

    /// Fraction of the window spent in write-drain mode, in `[0, 1]`.
    pub fn drain_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.drain_cycles as f64 / self.cycles as f64
    }

    /// Mean read-queue depth over the window.
    pub fn mean_read_queue_depth(&self) -> f64 {
        self.read_queue_depth.mean()
    }

    /// Accumulates another window (or channel) into this one.
    pub fn merge(&mut self, other: &CtrlWindowStats) {
        self.cycles += other.cycles;
        self.cas += other.cas;
        self.cas_hits += other.cas_hits;
        self.drain_cycles += other.drain_cycles;
        self.read_queue_depth.merge(&other.read_queue_depth);
        self.write_queue_depth.merge(&other.write_queue_depth);
    }
}

impl Default for CtrlWindowStats {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_zero_rates() {
        let w = CtrlWindowStats::empty();
        assert_eq!(w.row_hit_rate(), 0.0);
        assert_eq!(w.drain_occupancy(), 0.0);
        assert_eq!(w.mean_read_queue_depth(), 0.0);
    }

    #[test]
    fn rates_follow_counts() {
        let mut w = CtrlWindowStats::empty();
        w.cycles = 100;
        w.cas = 10;
        w.cas_hits = 9;
        w.drain_cycles = 25;
        assert!((w.row_hit_rate() - 0.9).abs() < 1e-12);
        assert!((w.drain_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = CtrlWindowStats::empty();
        a.cycles = 50;
        a.cas = 5;
        a.read_queue_depth.observe(3);
        let mut b = CtrlWindowStats::empty();
        b.cycles = 50;
        b.cas_hits = 2;
        b.read_queue_depth.observe(7);
        a.merge(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.cas, 5);
        assert_eq!(a.cas_hits, 2);
        assert_eq!(a.read_queue_depth.count, 2);
        assert_eq!(a.read_queue_depth.sum, 10);
    }

    #[test]
    fn window_roundtrips_through_json() {
        let mut w = CtrlWindowStats::empty();
        w.cycles = 7;
        w.write_queue_depth.observe(4);
        let json = serde_json::to_string(&w).unwrap();
        let back: CtrlWindowStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
