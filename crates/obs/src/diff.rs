//! Differential stacks: A/B comparison of two runs' stack accounting.
//!
//! A single stack says where a run's cycles went; a *delta* stack says
//! what a config change moved. [`DeltaStack`] pairs up the named
//! components of two stacks (by label, tolerating additions/removals),
//! computes signed per-component deltas, and separates signal from noise
//! with a significance threshold. It powers the `dramstack diff` CLI
//! subcommand for config-regression triage.
//!
//! Like the rest of this crate, it works on neutral `(label, value)`
//! pairs so it sits below the stack crates; `dramstack_sim` provides the
//! `SimReport`-to-`DeltaStack` adapter.

use serde::{Deserialize, Serialize};

/// One component's before/after values and signed change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentDelta {
    /// Stable component label (e.g. `refresh`, `act/pre`).
    pub label: String,
    /// Value in the baseline run.
    pub before: f64,
    /// Value in the candidate run.
    pub after: f64,
    /// `after - before`.
    pub delta: f64,
}

impl ComponentDelta {
    /// Relative change against the baseline (`delta / before`); infinite
    /// when a component appears from zero.
    pub fn relative(&self) -> f64 {
        if self.before == 0.0 {
            if self.delta == 0.0 {
                0.0
            } else {
                f64::INFINITY * self.delta.signum()
            }
        } else {
            self.delta / self.before.abs()
        }
    }
}

/// A per-component delta between two stacks of the same kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaStack {
    /// What is being compared (e.g. `bandwidth stack (GB/s)`).
    pub title: String,
    /// Unit of the component values, for rendering.
    pub unit: String,
    /// Absolute-delta threshold below which a component counts as noise.
    pub threshold: f64,
    /// Per-component deltas, in the stacks' natural component order.
    /// Components present in only one run appear with the missing side
    /// as 0.
    pub components: Vec<ComponentDelta>,
}

impl DeltaStack {
    /// Builds a delta stack from two `(label, value)` lists.
    ///
    /// Labels are matched by name; order follows `before`, with labels
    /// new in `after` appended. `threshold` is the absolute delta below
    /// which a component is considered unchanged.
    pub fn compare(
        title: impl Into<String>,
        unit: impl Into<String>,
        before: &[(String, f64)],
        after: &[(String, f64)],
        threshold: f64,
    ) -> Self {
        let mut components: Vec<ComponentDelta> = before
            .iter()
            .map(|(label, b)| {
                let a = after
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                ComponentDelta {
                    label: label.clone(),
                    before: *b,
                    after: a,
                    delta: a - *b,
                }
            })
            .collect();
        for (label, a) in after {
            if !before.iter().any(|(l, _)| l == label) {
                components.push(ComponentDelta {
                    label: label.clone(),
                    before: 0.0,
                    after: *a,
                    delta: *a,
                });
            }
        }
        DeltaStack {
            title: title.into(),
            unit: unit.into(),
            threshold: threshold.abs(),
            components,
        }
    }

    /// Sum of baseline components.
    pub fn before_total(&self) -> f64 {
        self.components.iter().map(|c| c.before).sum()
    }

    /// Sum of candidate components.
    pub fn after_total(&self) -> f64 {
        self.components.iter().map(|c| c.after).sum()
    }

    /// Components whose absolute delta clears the threshold, largest
    /// change first.
    pub fn significant(&self) -> Vec<&ComponentDelta> {
        let mut sig: Vec<&ComponentDelta> = self
            .components
            .iter()
            .filter(|c| c.delta.abs() > self.threshold)
            .collect();
        sig.sort_by(|x, y| {
            y.delta
                .abs()
                .partial_cmp(&x.delta.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sig
    }

    /// The single most-changed significant component, if any.
    pub fn dominant(&self) -> Option<&ComponentDelta> {
        self.significant().into_iter().next()
    }

    /// Whether nothing clears the threshold (self-diff, or pure noise).
    pub fn is_zero(&self) -> bool {
        self.components
            .iter()
            .all(|c| c.delta.abs() <= self.threshold)
    }

    /// Plain-text rendering: one signed bar per component, significant
    /// ones flagged, noise dimmed to `·`.
    pub fn render(&self) -> String {
        const HALF: usize = 24;
        let mut out = String::new();
        out.push_str(&format!(
            "{}: {:.3} -> {:.3} {} (Δ {:+.3})\n",
            self.title,
            self.before_total(),
            self.after_total(),
            self.unit,
            self.after_total() - self.before_total()
        ));
        let max = self
            .components
            .iter()
            .map(|c| c.delta.abs())
            .fold(self.threshold, f64::max);
        let width = self
            .components
            .iter()
            .map(|c| c.label.len())
            .max()
            .unwrap_or(0);
        for c in &self.components {
            let cells = if max > 0.0 {
                ((c.delta.abs() / max) * HALF as f64).round() as usize
            } else {
                0
            };
            let (neg, pos) = if c.delta < 0.0 {
                (
                    format!("{:>HALF$}", "◀".repeat(cells.min(HALF))),
                    " ".repeat(HALF),
                )
            } else {
                (" ".repeat(HALF), "▶".repeat(cells.min(HALF)))
            };
            let mark = if c.delta.abs() > self.threshold {
                "!"
            } else {
                "·"
            };
            out.push_str(&format!(
                "  {mark} {label:width$} {neg}|{pos} {delta:+10.3} ({before:.3} -> {after:.3})\n",
                label = c.label,
                delta = c.delta,
                before = c.before,
                after = c.after,
            ));
        }
        match self.dominant() {
            Some(d) => out.push_str(&format!(
                "  dominant change: {} ({:+.3} {})\n",
                d.label, d.delta, self.unit
            )),
            None => out.push_str(&format!(
                "  no component changed by more than {:.3} {}\n",
                self.threshold, self.unit
            )),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(l, v)| (l.to_string(), *v)).collect()
    }

    #[test]
    fn self_diff_is_the_zero_stack() {
        let s = labeled(&[("read", 10.0), ("refresh", 1.5), ("idle", 3.0)]);
        let d = DeltaStack::compare("bw", "GB/s", &s, &s, 0.01);
        assert!(d.is_zero());
        assert!(d.dominant().is_none());
        assert!(d.significant().is_empty());
        assert_eq!(d.before_total(), d.after_total());
        for c in &d.components {
            assert_eq!(c.delta, 0.0);
        }
    }

    #[test]
    fn dominant_change_is_the_largest_mover() {
        let before = labeled(&[("read", 10.0), ("refresh", 1.0), ("idle", 5.0)]);
        let after = labeled(&[("read", 9.0), ("refresh", 4.0), ("idle", 3.0)]);
        let d = DeltaStack::compare("bw", "GB/s", &before, &after, 0.5);
        assert!(!d.is_zero());
        let dom = d.dominant().unwrap();
        assert_eq!(dom.label, "refresh");
        assert_eq!(dom.delta, 3.0);
        // Ordered by |delta|: refresh (3), idle (2), read (1).
        let sig: Vec<&str> = d.significant().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(sig, ["refresh", "idle", "read"]);
    }

    #[test]
    fn threshold_filters_noise() {
        let before = labeled(&[("read", 10.0), ("idle", 5.0)]);
        let after = labeled(&[("read", 10.05), ("idle", 4.95)]);
        let d = DeltaStack::compare("bw", "GB/s", &before, &after, 0.1);
        assert!(d.is_zero());
        assert!(d.render().contains("no component changed"));
    }

    #[test]
    fn disjoint_labels_are_kept_with_zero_on_the_missing_side() {
        let before = labeled(&[("read", 10.0), ("legacy", 2.0)]);
        let after = labeled(&[("read", 10.0), ("new", 3.0)]);
        let d = DeltaStack::compare("bw", "GB/s", &before, &after, 0.1);
        let legacy = d.components.iter().find(|c| c.label == "legacy").unwrap();
        assert_eq!(
            (legacy.before, legacy.after, legacy.delta),
            (2.0, 0.0, -2.0)
        );
        let new = d.components.iter().find(|c| c.label == "new").unwrap();
        assert_eq!((new.before, new.after, new.delta), (0.0, 3.0, 3.0));
        assert_eq!(new.relative(), f64::INFINITY);
    }

    #[test]
    fn render_marks_significant_components() {
        let before = labeled(&[("read", 10.0), ("refresh", 1.0)]);
        let after = labeled(&[("read", 10.0), ("refresh", 4.0)]);
        let d = DeltaStack::compare("bandwidth", "GB/s", &before, &after, 0.5);
        let r = d.render();
        assert!(r.contains("! refresh"), "{r}");
        assert!(r.contains("· read"), "{r}");
        assert!(r.contains("dominant change: refresh"), "{r}");
    }

    #[test]
    fn delta_stack_roundtrips_through_json() {
        let before = labeled(&[("a", 1.0)]);
        let after = labeled(&[("a", 2.0)]);
        let d = DeltaStack::compare("t", "u", &before, &after, 0.1);
        let json = serde_json::to_string(&d).unwrap();
        let back: DeltaStack = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
