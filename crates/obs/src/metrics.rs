//! A small registry of named counters, gauges and fixed-bucket
//! histograms with per-window snapshot/reset semantics.
//!
//! Metrics are registered once (returning a cheap index handle) and
//! updated through the handle on the hot path — no string lookups per
//! event. [`MetricsRegistry::snapshot_and_reset`] closes a sampling
//! window: it returns the window's values and clears counters and
//! histograms (gauges are instantaneous and keep their last value).

use serde::{Deserialize, Serialize};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram of `u64` observations.
///
/// `bounds` are inclusive upper bucket edges; one extra overflow bucket
/// catches everything above the last bound, so `counts.len() ==
/// bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper edge of each bucket.
    pub bounds: Vec<u64>,
    /// Observations per bucket (last entry is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty histogram over the given bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be increasing"
        );
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Records `n` identical observations of `value` — exact (integer)
    /// equivalent of calling [`observe`](Self::observe) `n` times, at O(1)
    /// cost. Used by bulk accounting of homogeneous cycle spans.
    pub fn observe_n(&mut self, value: u64, n: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += n;
        self.count += n;
        self.sum += value * n;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Adds another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bounds must match to merge"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
    }
}

/// One window's worth of metric values, by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Registry of named metrics with window semantics.
///
/// Serializable so simulator snapshots can capture an open sampling
/// window mid-flight; restoring a serialized registry into a component
/// re-registered with the same metric names resumes the window exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter (starts at 0 each window).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        assert!(
            self.counters.iter().all(|(n, _)| n != name),
            "counter {name:?} already registered"
        );
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (keeps its last set value across windows).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        assert!(
            self.gauges.iter().all(|(n, _)| n != name),
            "gauge {name:?} already registered"
        );
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a fixed-bucket histogram (cleared each window).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a histogram or the
    /// bounds are not strictly increasing.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        assert!(
            self.histograms.iter().all(|(n, _)| n != name),
            "histogram {name:?} already registered"
        );
        self.histograms
            .push((name.to_string(), HistogramSnapshot::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Records `n` identical histogram observations at O(1) cost (see
    /// [`HistogramSnapshot::observe_n`]).
    #[inline]
    pub fn observe_n(&mut self, id: HistogramId, value: u64, n: u64) {
        self.histograms[id.0].1.observe_n(value, n);
    }

    /// Closes the current window: returns its values and resets counters
    /// and histograms (gauges persist).
    pub fn snapshot_and_reset(&mut self) -> MetricsSnapshot {
        let snap = MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        };
        for (_, v) in &mut self.counters {
            *v = 0;
        }
        for (_, h) in &mut self.histograms {
            h.reset();
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset_per_window() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("cas");
        m.inc(c, 3);
        m.inc(c, 2);
        let w1 = m.snapshot_and_reset();
        assert_eq!(w1.counter("cas"), Some(5));
        m.inc(c, 1);
        let w2 = m.snapshot_and_reset();
        assert_eq!(w2.counter("cas"), Some(1));
        assert_eq!(w2.counter("missing"), None);
    }

    #[test]
    fn gauges_persist_across_windows() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("occupancy");
        m.set(g, 0.75);
        let w1 = m.snapshot_and_reset();
        let w2 = m.snapshot_and_reset();
        assert_eq!(w1.gauge("occupancy"), Some(0.75));
        assert_eq!(w2.gauge("occupancy"), Some(0.75));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = HistogramSnapshot::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1045);
        assert!((h.mean() - 1045.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn observe_n_equals_repeated_observe() {
        let mut bulk = HistogramSnapshot::new(&[1, 4, 16]);
        let mut single = HistogramSnapshot::new(&[1, 4, 16]);
        for (value, n) in [(0, 5), (3, 2), (17, 4), (16, 1)] {
            bulk.observe_n(value, n);
            for _ in 0..n {
                single.observe(value);
            }
        }
        assert_eq!(bulk, single);

        let mut m = MetricsRegistry::new();
        let h = m.histogram("depth", &[1, 4, 16]);
        m.observe_n(h, 0, 3);
        let snap = m.snapshot_and_reset();
        assert_eq!(snap.histogram("depth").unwrap().count, 3);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = HistogramSnapshot::new(&[2, 8]);
        let mut b = HistogramSnapshot::new(&[2, 8]);
        a.observe(1);
        b.observe(1);
        b.observe(9);
        a.merge(&b);
        assert_eq!(a.counts, vec![2, 0, 1]);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 11);
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = HistogramSnapshot::new(&[2, 8]);
        a.merge(&HistogramSnapshot::new(&[2, 9]));
    }

    #[test]
    fn registry_histograms_reset_per_window() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("depth", &[0, 1, 2, 4, 8, 16, 32]);
        m.observe(h, 0);
        m.observe(h, 40);
        let w1 = m.snapshot_and_reset();
        let snap = w1.histogram("depth").unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(*snap.counts.last().unwrap(), 1, "40 overflows");
        let w2 = m.snapshot_and_reset();
        assert_eq!(w2.histogram("depth").unwrap().count, 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_names_rejected() {
        let mut m = MetricsRegistry::new();
        m.counter("x");
        m.counter("x");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("cas");
        let g = m.gauge("rate");
        let h = m.histogram("depth", &[1, 2]);
        m.inc(c, 7);
        m.set(g, 0.5);
        m.observe(h, 2);
        let snap = m.snapshot_and_reset();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
