//! Serialized log output for everything that writes to the terminal.
//!
//! The simulator has several writers that used to race for stderr:
//! heartbeat progress lines, the live dashboard's ANSI frames, and plain
//! log messages. [`LogSink`] funnels them through one mutex-guarded
//! writer so lines and multi-line blocks never interleave mid-line.
//!
//! The sink is cheaply cloneable (shared handle); a `capture()` sink
//! buffers output in memory for tests and for non-terminal consumers.

use std::io::Write;
use std::sync::{Arc, Mutex};

enum Target {
    Stderr,
    Writer(Box<dyn Write + Send>),
    Capture(Vec<u8>),
}

impl std::fmt::Debug for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Stderr => f.write_str("Stderr"),
            Target::Writer(_) => f.write_str("Writer"),
            Target::Capture(buf) => write!(f, "Capture({} bytes)", buf.len()),
        }
    }
}

/// A shared, mutex-serialized line/block writer.
///
/// Clones share the same underlying target; each [`line`](LogSink::line)
/// or [`block`](LogSink::block) call takes the lock once, so concurrent
/// writers can never split each other's output.
#[derive(Debug, Clone)]
pub struct LogSink {
    target: Arc<Mutex<Target>>,
}

impl LogSink {
    /// A sink writing to the process's stderr.
    pub fn stderr() -> Self {
        LogSink {
            target: Arc::new(Mutex::new(Target::Stderr)),
        }
    }

    /// A sink writing to an arbitrary writer (a file, `io::sink()`, …).
    pub fn writer(w: Box<dyn Write + Send>) -> Self {
        LogSink {
            target: Arc::new(Mutex::new(Target::Writer(w))),
        }
    }

    /// A sink buffering everything in memory; read back with
    /// [`captured`](LogSink::captured).
    pub fn capture() -> Self {
        LogSink {
            target: Arc::new(Mutex::new(Target::Capture(Vec::new()))),
        }
    }

    /// Writes one line (a trailing newline is added if missing).
    pub fn line(&self, s: &str) {
        let mut guard = self.target.lock().expect("log sink poisoned");
        let nl = if s.ends_with('\n') { "" } else { "\n" };
        Self::emit(&mut guard, format_args!("{s}{nl}"));
    }

    /// Writes a pre-formatted multi-line block verbatim (no newline
    /// appended), atomically with respect to other sink users. Used by
    /// the live dashboard whose frames carry their own ANSI cursor
    /// movement.
    pub fn block(&self, s: &str) {
        let mut guard = self.target.lock().expect("log sink poisoned");
        Self::emit(&mut guard, format_args!("{s}"));
    }

    fn emit(target: &mut Target, args: std::fmt::Arguments<'_>) {
        // Log output is best-effort: a closed pipe must not kill the run.
        let _ = match target {
            Target::Stderr => {
                let stderr = std::io::stderr();
                let mut h = stderr.lock();
                h.write_fmt(args).and_then(|_| h.flush())
            }
            Target::Writer(w) => w.write_fmt(args).and_then(|_| w.flush()),
            Target::Capture(buf) => buf.write_fmt(args),
        };
    }

    /// The buffered output of a [`capture`](LogSink::capture) sink
    /// (empty string for other sink kinds).
    pub fn captured(&self) -> String {
        let guard = self.target.lock().expect("log sink poisoned");
        match &*guard {
            Target::Capture(buf) => String::from_utf8_lossy(buf).into_owned(),
            _ => String::new(),
        }
    }
}

impl Default for LogSink {
    fn default() -> Self {
        Self::stderr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sink_records_lines_with_newlines() {
        let sink = LogSink::capture();
        sink.line("hello");
        sink.line("world\n");
        assert_eq!(sink.captured(), "hello\nworld\n");
    }

    #[test]
    fn blocks_are_written_verbatim() {
        let sink = LogSink::capture();
        sink.block("\x1b[2Aframe");
        assert_eq!(sink.captured(), "\x1b[2Aframe");
    }

    #[test]
    fn clones_share_one_target() {
        let sink = LogSink::capture();
        let other = sink.clone();
        sink.line("a");
        other.line("b");
        assert_eq!(sink.captured(), "a\nb\n");
    }

    #[test]
    fn concurrent_writers_never_interleave_lines() {
        let sink = LogSink::capture();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        s.line(&format!("thread-{t}-line-{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let out = sink.captured();
        assert_eq!(out.lines().count(), 200);
        for l in out.lines() {
            assert!(l.starts_with("thread-"), "interleaved line: {l:?}");
        }
    }

    #[test]
    fn writer_sink_forwards_to_the_writer() {
        // io::sink(): just exercise the path without panicking.
        let sink = LogSink::writer(Box::new(std::io::sink()));
        sink.line("dropped");
        assert_eq!(sink.captured(), "");
    }
}
