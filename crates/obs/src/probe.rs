//! The probe trait the memory controller reports events into.

use dramstack_dram::{Command, Cycle};

/// Observation hooks called by the memory controller.
///
/// Every method has an inlined no-op default, so implementors override
/// only what they need and an attached probe costs nothing for the events
/// it ignores. Hooks receive copies of controller state; a probe cannot
/// influence scheduling, timing or statistics — simulation results are
/// bit-identical with or without a probe attached (asserted by the
/// `probe_determinism` integration test).
///
/// Request identifiers are the raw `u64` inside the controller's
/// `RequestId`; they are unique per controller for the lifetime of the
/// run. `flat_bank` is the flat bank index (as used by `CycleView`); for
/// rank-scoped commands (refresh) it is the first bank of the rank.
pub trait Probe: std::fmt::Debug {
    /// A read (`is_write == false`) or write request entered its queue.
    #[inline]
    fn request_accepted(&mut self, id: u64, phys: u64, is_write: bool) {
        let _ = (id, phys, is_write);
    }

    /// A queued request's arrival cycle was stamped (the first cycle the
    /// controller observed it).
    #[inline]
    fn request_arrival(&mut self, id: u64, now: Cycle) {
        let _ = (id, now);
    }

    /// The CAS for a request issued. `row_hit` is true when the request
    /// needed no PRE/ACT of its own. For reads, data returns later (see
    /// [`data_returned`](Self::data_returned)); a write is finished with
    /// its CAS as far as the requester is concerned.
    #[inline]
    fn cas_issued(&mut self, id: u64, now: Cycle, is_write: bool, row_hit: bool, flat_bank: usize) {
        let _ = (id, now, is_write, row_hit, flat_bank);
    }

    /// A read's data became available (excluding the fixed controller
    /// overhead added on top for the requester).
    #[inline]
    fn data_returned(&mut self, id: u64, now: Cycle) {
        let _ = (id, now);
    }

    /// A DRAM command went out on the command bus.
    #[inline]
    fn command_issued(&mut self, now: Cycle, cmd: Command, flat_bank: usize) {
        let _ = (now, cmd, flat_bank);
    }

    /// The controller entered write-drain mode with `wq_len` writes
    /// buffered.
    #[inline]
    fn write_drain_entered(&mut self, now: Cycle, wq_len: usize) {
        let _ = (now, wq_len);
    }

    /// The controller left write-drain mode.
    #[inline]
    fn write_drain_exited(&mut self, now: Cycle) {
        let _ = (now,);
    }

    /// A refresh issued to `rank`, occupying it over `[start, end)`.
    #[inline]
    fn refresh_window(&mut self, rank: usize, start: Cycle, end: Cycle) {
        let _ = (rank, start, end);
    }

    /// Per-cycle controller occupancy (called once per tick while a probe
    /// is attached).
    #[inline]
    fn tick(&mut self, now: Cycle, read_q: usize, write_q: usize, in_flight: usize, drain: bool) {
        let _ = (now, read_q, write_q, in_flight, drain);
    }

    /// Whether this probe needs the per-cycle [`tick`](Self::tick) hook
    /// even across provably inert spans.
    ///
    /// The controller's idle fast-forward skips cycles in which nothing
    /// observable happens; the only probe hook those cycles would have
    /// fired is `tick`. A probe that returns `false` here (e.g. an
    /// event-driven auditor) keeps fast-forwarding enabled; the default
    /// `true` is conservative and disables it while the probe is
    /// attached. Either way results are bit-identical — probes observe,
    /// they never steer.
    #[inline]
    fn wants_ticks(&self) -> bool {
        true
    }
}

/// The default probe: every hook is an inlined no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// A probe that forwards every hook to two inner probes, in order.
///
/// Lets independently written observers coexist on one controller — e.g.
/// the default-armed protocol auditor plus a user-attached
/// [`ChromeTraceProbe`](crate::ChromeTraceProbe).
#[derive(Debug)]
pub struct TeeProbe {
    a: Box<dyn Probe>,
    b: Box<dyn Probe>,
}

impl TeeProbe {
    /// Combines two probes; `a` sees every event before `b`.
    pub fn new(a: Box<dyn Probe>, b: Box<dyn Probe>) -> Self {
        TeeProbe { a, b }
    }

    /// Splits the tee back into its parts.
    pub fn into_parts(self) -> (Box<dyn Probe>, Box<dyn Probe>) {
        (self.a, self.b)
    }
}

impl Probe for TeeProbe {
    fn request_accepted(&mut self, id: u64, phys: u64, is_write: bool) {
        self.a.request_accepted(id, phys, is_write);
        self.b.request_accepted(id, phys, is_write);
    }

    fn request_arrival(&mut self, id: u64, now: Cycle) {
        self.a.request_arrival(id, now);
        self.b.request_arrival(id, now);
    }

    fn cas_issued(&mut self, id: u64, now: Cycle, is_write: bool, row_hit: bool, flat_bank: usize) {
        self.a.cas_issued(id, now, is_write, row_hit, flat_bank);
        self.b.cas_issued(id, now, is_write, row_hit, flat_bank);
    }

    fn data_returned(&mut self, id: u64, now: Cycle) {
        self.a.data_returned(id, now);
        self.b.data_returned(id, now);
    }

    fn command_issued(&mut self, now: Cycle, cmd: Command, flat_bank: usize) {
        self.a.command_issued(now, cmd, flat_bank);
        self.b.command_issued(now, cmd, flat_bank);
    }

    fn write_drain_entered(&mut self, now: Cycle, wq_len: usize) {
        self.a.write_drain_entered(now, wq_len);
        self.b.write_drain_entered(now, wq_len);
    }

    fn write_drain_exited(&mut self, now: Cycle) {
        self.a.write_drain_exited(now);
        self.b.write_drain_exited(now);
    }

    fn refresh_window(&mut self, rank: usize, start: Cycle, end: Cycle) {
        self.a.refresh_window(rank, start, end);
        self.b.refresh_window(rank, start, end);
    }

    fn tick(&mut self, now: Cycle, read_q: usize, write_q: usize, in_flight: usize, drain: bool) {
        self.a.tick(now, read_q, write_q, in_flight, drain);
        self.b.tick(now, read_q, write_q, in_flight, drain);
    }

    fn wants_ticks(&self) -> bool {
        self.a.wants_ticks() || self.b.wants_ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_dram::BankAddr;

    /// A probe that counts hook invocations — exercising every default
    /// signature.
    #[derive(Debug, Default)]
    struct CountingProbe {
        calls: u64,
    }

    impl Probe for CountingProbe {
        fn command_issued(&mut self, _now: Cycle, _cmd: Command, _flat: usize) {
            self.calls += 1;
        }
    }

    #[test]
    fn null_probe_accepts_all_hooks() {
        let mut p = NullProbe;
        p.request_accepted(1, 0x40, false);
        p.request_arrival(1, 10);
        p.cas_issued(1, 12, false, true, 0);
        p.data_returned(1, 30);
        p.command_issued(12, Command::read(BankAddr::new(0, 0, 0), 3), 0);
        p.write_drain_entered(50, 28);
        p.write_drain_exited(90);
        p.refresh_window(0, 100, 504);
        p.tick(5, 1, 0, 0, false);
    }

    #[test]
    fn overridden_hook_fires_and_others_default() {
        let mut p = CountingProbe::default();
        p.tick(0, 0, 0, 0, false);
        assert_eq!(p.calls, 0, "tick keeps its default");
        p.command_issued(1, Command::precharge(BankAddr::new(0, 1, 2)), 6);
        assert_eq!(p.calls, 1);
    }

    #[test]
    fn probes_are_boxable() {
        let mut boxed: Box<dyn Probe> = Box::new(NullProbe);
        boxed.tick(0, 0, 0, 0, false);
    }
}
