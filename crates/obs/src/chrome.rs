//! Chrome trace-event (Perfetto-compatible) export.
//!
//! [`ChromeTraceProbe`] records the controller's probe stream; the
//! [`ChromeTraceHandle`] it hands out builds a [`ChromeTrace`] whose
//! JSON loads directly into Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`:
//!
//! * each **read request** becomes a duration span (`ph: "X"`) on its
//!   bank's track, with nested `queued` (arrival → CAS) and `burst`
//!   (CAS → data return) child spans;
//! * each **write request** becomes a span from arrival to its CAS;
//! * every **DRAM command** (ACT/PRE/RD/WR/REF) becomes an instant event
//!   (`ph: "i"`) on the same bank track, carrying its cycle and
//!   row/column in `args`;
//! * **write-drain** and **refresh** windows become spans on dedicated
//!   tracks;
//! * queue occupancy is emitted as counter events (`ph: "C"`) whenever a
//!   depth changes.
//!
//! Timestamps are microseconds of simulated time (`cycle × cycle_ns /
//! 1000`); the originating DRAM cycle is preserved exactly in
//! `args.cycle`.

use std::cell::RefCell;
use std::rc::Rc;

use serde::Value;

use dramstack_dram::{Command, Cycle};

use crate::probe::Probe;

/// Track (Chrome `tid`) of the write-drain window span.
pub const TID_DRAIN: usize = 1000;
/// Base track of per-rank refresh windows (`TID_REFRESH + rank`).
pub const TID_REFRESH: usize = 1100;
/// Track of the queue-occupancy counters.
pub const TID_QUEUES: usize = 1200;

/// The shape of one trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A complete duration span (`ph: "X"`) of the given length.
    Span {
        /// Span length in DRAM cycles.
        dur_cycles: Cycle,
    },
    /// An instant event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
}

/// One recorded event, still in simulation units.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (request label, command mnemonic, counter name).
    pub name: String,
    /// Chrome category.
    pub cat: &'static str,
    /// Start cycle.
    pub at: Cycle,
    /// Span / instant / counter.
    pub kind: TraceEventKind,
    /// Track within the channel (flat bank index, or a `TID_*` constant).
    pub tid: usize,
    /// Extra key/value payload (`args` in the JSON).
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct OpenRequest {
    id: u64,
    phys: u64,
    is_write: bool,
    arrival: Option<Cycle>,
    cas_at: Option<Cycle>,
    flat_bank: usize,
    row_hit: bool,
}

#[derive(Debug)]
struct Recorder {
    channel: usize,
    cycle_ns: f64,
    events: Vec<TraceEvent>,
    open: Vec<OpenRequest>,
    drain_since: Option<Cycle>,
    last_read_q: usize,
    last_write_q: usize,
}

impl Recorder {
    fn find(&mut self, id: u64) -> Option<&mut OpenRequest> {
        self.open.iter_mut().find(|r| r.id == id)
    }

    fn close(&mut self, id: u64) -> Option<OpenRequest> {
        let idx = self.open.iter().position(|r| r.id == id)?;
        Some(self.open.swap_remove(idx))
    }
}

/// A recording probe writing into a shared buffer; build the trace from
/// the paired [`ChromeTraceHandle`].
#[derive(Debug)]
pub struct ChromeTraceProbe {
    inner: Rc<RefCell<Recorder>>,
}

/// Read side of a [`ChromeTraceProbe`]: call
/// [`build`](ChromeTraceHandle::build) after the run.
#[derive(Debug, Clone)]
pub struct ChromeTraceHandle {
    inner: Rc<RefCell<Recorder>>,
}

impl ChromeTraceProbe {
    /// Creates a probe for one controller (`channel` becomes the Chrome
    /// `pid`; `cycle_ns` converts cycles to trace timestamps).
    pub fn new(channel: usize, cycle_ns: f64) -> (Self, ChromeTraceHandle) {
        let inner = Rc::new(RefCell::new(Recorder {
            channel,
            cycle_ns,
            events: Vec::new(),
            open: Vec::new(),
            drain_since: None,
            last_read_q: usize::MAX,
            last_write_q: usize::MAX,
        }));
        (
            ChromeTraceProbe {
                inner: Rc::clone(&inner),
            },
            ChromeTraceHandle { inner },
        )
    }
}

impl Probe for ChromeTraceProbe {
    fn request_accepted(&mut self, id: u64, phys: u64, is_write: bool) {
        self.inner.borrow_mut().open.push(OpenRequest {
            id,
            phys,
            is_write,
            arrival: None,
            cas_at: None,
            flat_bank: 0,
            row_hit: false,
        });
    }

    fn request_arrival(&mut self, id: u64, now: Cycle) {
        if let Some(r) = self.inner.borrow_mut().find(id) {
            r.arrival = Some(now);
        }
    }

    fn cas_issued(&mut self, id: u64, now: Cycle, is_write: bool, row_hit: bool, flat_bank: usize) {
        let mut rec = self.inner.borrow_mut();
        let Some(r) = rec.find(id) else { return };
        r.cas_at = Some(now);
        r.flat_bank = flat_bank;
        r.row_hit = row_hit;
        if !is_write {
            return; // the read span closes at data_returned
        }
        // A write is done (from the requester's view) once its CAS issues.
        let Some(r) = rec.close(id) else { return };
        let start = r.arrival.unwrap_or(now);
        rec.events.push(TraceEvent {
            name: format!("write #{id}"),
            cat: "request",
            at: start,
            kind: TraceEventKind::Span {
                dur_cycles: now.saturating_sub(start).max(1),
            },
            tid: flat_bank,
            args: vec![
                ("id", id),
                ("phys", r.phys),
                ("row_hit", u64::from(row_hit)),
            ],
        });
    }

    fn data_returned(&mut self, id: u64, now: Cycle) {
        let mut rec = self.inner.borrow_mut();
        let Some(r) = rec.close(id) else { return };
        if r.is_write {
            return;
        }
        let start = r.arrival.unwrap_or(now);
        let cas = r.cas_at.unwrap_or(now).clamp(start, now);
        let tid = r.flat_bank;
        rec.events.push(TraceEvent {
            name: format!("read #{id}"),
            cat: "request",
            at: start,
            kind: TraceEventKind::Span {
                dur_cycles: now.saturating_sub(start).max(1),
            },
            tid,
            args: vec![
                ("id", id),
                ("phys", r.phys),
                ("row_hit", u64::from(r.row_hit)),
            ],
        });
        if cas > start {
            rec.events.push(TraceEvent {
                name: "queued".to_string(),
                cat: "request",
                at: start,
                kind: TraceEventKind::Span {
                    dur_cycles: cas - start,
                },
                tid,
                args: vec![("id", id)],
            });
        }
        if now > cas {
            rec.events.push(TraceEvent {
                name: "burst".to_string(),
                cat: "request",
                at: cas,
                kind: TraceEventKind::Span {
                    dur_cycles: now - cas,
                },
                tid,
                args: vec![("id", id)],
            });
        }
    }

    fn command_issued(&mut self, now: Cycle, cmd: Command, flat_bank: usize) {
        let mut rec = self.inner.borrow_mut();
        rec.events.push(TraceEvent {
            name: cmd.kind.to_string(),
            cat: "command",
            at: now,
            kind: TraceEventKind::Instant,
            tid: flat_bank,
            args: vec![
                ("cycle", now),
                ("row", u64::from(cmd.row)),
                ("col", u64::from(cmd.column)),
            ],
        });
    }

    fn write_drain_entered(&mut self, now: Cycle, wq_len: usize) {
        let mut rec = self.inner.borrow_mut();
        rec.drain_since = Some(now);
        let _ = wq_len;
    }

    fn write_drain_exited(&mut self, now: Cycle) {
        let mut rec = self.inner.borrow_mut();
        if let Some(start) = rec.drain_since.take() {
            rec.events.push(TraceEvent {
                name: "write drain".to_string(),
                cat: "controller",
                at: start,
                kind: TraceEventKind::Span {
                    dur_cycles: now.saturating_sub(start).max(1),
                },
                tid: TID_DRAIN,
                args: Vec::new(),
            });
        }
    }

    fn refresh_window(&mut self, rank: usize, start: Cycle, end: Cycle) {
        self.inner.borrow_mut().events.push(TraceEvent {
            name: format!("refresh rank {rank}"),
            cat: "controller",
            at: start,
            kind: TraceEventKind::Span {
                dur_cycles: end.saturating_sub(start).max(1),
            },
            tid: TID_REFRESH + rank,
            args: Vec::new(),
        });
    }

    fn tick(&mut self, now: Cycle, read_q: usize, write_q: usize, _in_flight: usize, _drain: bool) {
        let mut rec = self.inner.borrow_mut();
        if read_q != rec.last_read_q || write_q != rec.last_write_q {
            rec.last_read_q = read_q;
            rec.last_write_q = write_q;
            rec.events.push(TraceEvent {
                name: "queues".to_string(),
                cat: "controller",
                at: now,
                kind: TraceEventKind::Counter,
                tid: TID_QUEUES,
                args: vec![("reads", read_q as u64), ("writes", write_q as u64)],
            });
        }
    }
}

impl ChromeTraceHandle {
    /// Builds the trace recorded so far (open requests are dropped).
    pub fn build(&self) -> ChromeTrace {
        let rec = self.inner.borrow();
        ChromeTrace {
            channel: rec.channel,
            cycle_ns: rec.cycle_ns,
            events: rec.events.clone(),
        }
    }
}

/// A finished Chrome trace for one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// Channel index (the Chrome `pid`).
    pub channel: usize,
    /// Nanoseconds per DRAM cycle.
    pub cycle_ns: f64,
    /// Recorded events in simulation units.
    pub events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// The `(cycle, mnemonic)` sequence of recorded DRAM commands, in
    /// issue order — directly comparable with a
    /// [`dramstack_dram::trace`] command trace.
    pub fn command_sequence(&self) -> Vec<(Cycle, String)> {
        self.events
            .iter()
            .filter(|e| e.cat == "command")
            .map(|e| (e.at, e.name.clone()))
            .collect()
    }

    /// Spans of the given category as `(name, start_cycle, end_cycle,
    /// tid)`.
    pub fn spans(&self, cat: &str) -> Vec<(String, Cycle, Cycle, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Span { dur_cycles } if e.cat == cat => {
                    Some((e.name.clone(), e.at, e.at + dur_cycles, e.tid))
                }
                _ => None,
            })
            .collect()
    }

    fn ts_us(&self, cycle: Cycle) -> f64 {
        cycle as f64 * self.cycle_ns / 1000.0
    }

    fn event_value(&self, e: &TraceEvent) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("name".to_string(), Value::Str(e.name.clone())),
            ("cat".to_string(), Value::Str(e.cat.to_string())),
            ("ts".to_string(), Value::Float(self.ts_us(e.at))),
            ("pid".to_string(), Value::Int(self.channel as i128)),
            ("tid".to_string(), Value::Int(e.tid as i128)),
        ];
        match e.kind {
            TraceEventKind::Span { dur_cycles } => {
                m.push(("ph".to_string(), Value::Str("X".to_string())));
                m.push((
                    "dur".to_string(),
                    Value::Float(dur_cycles as f64 * self.cycle_ns / 1000.0),
                ));
            }
            TraceEventKind::Instant => {
                m.push(("ph".to_string(), Value::Str("i".to_string())));
                m.push(("s".to_string(), Value::Str("t".to_string())));
            }
            TraceEventKind::Counter => {
                m.push(("ph".to_string(), Value::Str("C".to_string())));
            }
        }
        if !e.args.is_empty() {
            let args: Vec<(String, Value)> = e
                .args
                .iter()
                .map(|(k, v)| ((*k).to_string(), Value::Int(*v as i128)))
                .collect();
            m.push(("args".to_string(), Value::Map(args)));
        }
        Value::Map(m)
    }

    /// Renders the trace as Chrome trace-event JSON.
    pub fn to_json(&self) -> String {
        let events: Vec<Value> = self.events.iter().map(|e| self.event_value(e)).collect();
        let top = Value::Map(vec![
            ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
            ("traceEvents".to_string(), Value::Seq(events)),
        ]);
        serde_json::to_string_pretty(&top).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_dram::BankAddr;

    fn probe() -> (ChromeTraceProbe, ChromeTraceHandle) {
        ChromeTraceProbe::new(0, 0.8333)
    }

    #[test]
    fn read_lifecycle_produces_nested_spans() {
        let (mut p, h) = probe();
        p.request_accepted(1, 0x1000, false);
        p.request_arrival(1, 10);
        p.cas_issued(1, 25, false, false, 3);
        p.data_returned(1, 50);
        let trace = h.build();
        let spans = trace.spans("request");
        assert_eq!(spans.len(), 3);
        let (_, s0, e0, tid) = spans[0].clone();
        assert_eq!((s0, e0, tid), (10, 50, 3));
        // queued and burst nest inside the request span and tile it.
        assert_eq!(spans[1].1, 10);
        assert_eq!(spans[1].2, 25);
        assert_eq!(spans[2].1, 25);
        assert_eq!(spans[2].2, 50);
    }

    #[test]
    fn write_closes_at_cas() {
        let (mut p, h) = probe();
        p.request_accepted(2, 0x40, true);
        p.request_arrival(2, 5);
        p.cas_issued(2, 30, true, true, 7);
        let spans = h.build().spans("request");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "write #2");
        assert_eq!((spans[0].1, spans[0].2, spans[0].3), (5, 30, 7));
    }

    #[test]
    fn commands_become_instant_events_in_order() {
        let (mut p, h) = probe();
        let b = BankAddr::new(0, 1, 2);
        p.command_issued(3, Command::activate(b, 9), 6);
        p.command_issued(20, Command::read(b, 4), 6);
        let seq = h.build().command_sequence();
        assert_eq!(seq, vec![(3, "ACT".to_string()), (20, "RD".to_string())]);
    }

    #[test]
    fn drain_and_refresh_windows_are_spans() {
        let (mut p, h) = probe();
        p.write_drain_entered(100, 28);
        p.write_drain_exited(250);
        p.refresh_window(0, 300, 804);
        let trace = h.build();
        let spans = trace.spans("controller");
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].1, spans[0].2, spans[0].3), (100, 250, TID_DRAIN));
        assert_eq!(
            (spans[1].1, spans[1].2, spans[1].3),
            (300, 804, TID_REFRESH)
        );
    }

    #[test]
    fn queue_counters_emit_only_on_change() {
        let (mut p, h) = probe();
        p.tick(0, 1, 0, 0, false);
        p.tick(1, 1, 0, 0, false);
        p.tick(2, 2, 0, 0, false);
        let n = h
            .build()
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Counter))
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn json_is_valid_and_has_expected_fields() {
        let (mut p, h) = probe();
        p.request_accepted(1, 0x1000, false);
        p.request_arrival(1, 0);
        p.cas_issued(1, 10, false, true, 0);
        p.data_returned(1, 40);
        p.command_issued(10, Command::read(BankAddr::new(0, 0, 0), 0), 0);
        let json = h.build().to_json();
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        assert!(events.len() >= 4);
        for e in events {
            assert!(e.get("name").is_some());
            assert!(e.get("ph").is_some());
            assert!(e.get("ts").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
    }

    #[test]
    fn timestamps_scale_by_cycle_time() {
        let (mut p, h) = ChromeTraceProbe::new(2, 2.0);
        p.command_issued(500, Command::precharge(BankAddr::new(0, 0, 0)), 0);
        let trace = h.build();
        assert!(
            (trace.ts_us(500) - 1.0).abs() < 1e-12,
            "500 cycles × 2 ns = 1 µs"
        );
        let json = trace.to_json();
        assert!(json.contains("\"ts\": 1.0"), "{json}");
    }
}
