//! Observability for the dramstack simulator.
//!
//! Simulation models answer *what happened*; this crate makes it cheap to
//! see *how* it happened without perturbing the model. It provides four
//! pieces, none of which may change simulation results:
//!
//! * [`Probe`] — a hook trait the memory controller calls at every
//!   interesting event (request lifecycle, DRAM command issue, write-drain
//!   and refresh windows). The default [`NullProbe`] turns every hook into
//!   an inlined no-op, and the controller additionally gates per-cycle
//!   hooks behind an `attached` flag, so an uninstrumented simulation pays
//!   nothing.
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms with per-window snapshot/reset, used by the stack sampler
//!   to attach controller health (queue depths, row-hit rate, drain
//!   occupancy) to every through-time sample.
//! * [`ChromeTraceProbe`] — a recording probe that renders request
//!   lifecycles as duration spans and DRAM commands as instant events in
//!   the Chrome trace-event JSON format (loadable in Perfetto or
//!   `chrome://tracing`).
//! * [`PhaseTimers`] / [`PerfReport`] — wall-clock self-profiling of the
//!   simulator's drive loop: where host time goes, and how many simulated
//!   cycles per second the run achieved.
//! * [`StackSeries`] — a bounded-memory streaming through-time series
//!   with pairwise downsampling, the backbone of live telemetry.
//! * [`Advisor`] — the paper's stack-reading diagnosis logic as code:
//!   rule-based bottleneck classification over window shares with
//!   hysteresis, emitting typed [`Diagnosis`] records.
//! * [`DeltaStack`] — A/B differential stacks with a significance
//!   threshold, powering `dramstack diff`.
//! * [`LogSink`] — one mutex-serialized writer for heartbeats, dashboard
//!   frames and plain logs, so terminal output never interleaves.
//!
//! The contract: attaching any probe or enabling any profiling must leave
//! simulation results bit-identical. Probes observe; they never steer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod advisor;
pub mod chrome;
pub mod diff;
pub mod metrics;
pub mod perf;
mod probe;
pub mod series;
pub mod sink;
pub mod window;

pub use advisor::{Advisor, AdvisorConfig, BottleneckClass, Diagnosis, WindowObservation};
pub use chrome::{ChromeTrace, ChromeTraceHandle, ChromeTraceProbe, TraceEvent, TraceEventKind};
pub use diff::{ComponentDelta, DeltaStack};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use perf::{Heartbeat, PerfReport, PhaseTimers, SimPhase};
pub use probe::{NullProbe, Probe, TeeProbe};
pub use series::{StackSeries, WindowMerge};
pub use sink::LogSink;
pub use window::CtrlWindowStats;
