//! Bounded-memory streaming window series.
//!
//! [`StackSeries`] retains a through-time series of sample windows in a
//! fixed-capacity buffer. When a run produces more windows than the
//! capacity, adjacent buckets are merged pairwise in place — the buffer
//! halves, the per-bucket scale doubles — so an arbitrarily long run
//! always fits while the retained series still spans the whole run at a
//! progressively coarser (but uniform) resolution.
//!
//! The series is generic over the window type via [`WindowMerge`]; the
//! stack crates implement it for their sample types (e.g. `TimeSample`),
//! keeping this crate free of any dependency on them.

/// A window that can absorb an adjacent window of the same series.
///
/// Merging must be associative in the accounting sense: merging windows
/// `[a, b]` then `[ab, c]` yields the same totals as `[a, bc]`. All the
/// stack types already satisfy this (cycle counts add, latency averages
/// merge read-weighted).
pub trait WindowMerge {
    /// Folds `next` — the window immediately following `self` in time —
    /// into `self`.
    fn merge_window(&mut self, next: &Self);
}

/// Fixed-capacity through-time ring with pairwise downsampling.
///
/// # Example
///
/// ```
/// use dramstack_obs::series::{StackSeries, WindowMerge};
///
/// #[derive(Clone)]
/// struct W(u64);
/// impl WindowMerge for W {
///     fn merge_window(&mut self, next: &Self) { self.0 += next.0; }
/// }
///
/// let mut s = StackSeries::new(4);
/// for _ in 0..100 {
///     s.push(W(1));
/// }
/// assert!(s.len() <= 4);
/// assert_eq!(s.total_pushed(), 100);
/// // No cycles were lost to the downsampling:
/// let retained: u64 = s.buckets().iter().map(|w| w.0).sum::<u64>()
///     + s.pending().map_or(0, |w| w.0);
/// assert_eq!(retained, 100);
/// ```
#[derive(Debug, Clone)]
pub struct StackSeries<T> {
    capacity: usize,
    /// Source windows folded into each stored bucket.
    scale: u64,
    buckets: Vec<T>,
    /// Partially filled trailing bucket (fewer than `scale` windows).
    pending: Option<T>,
    pending_count: u64,
    total_pushed: u64,
}

impl<T: WindowMerge + Clone> StackSeries<T> {
    /// Creates a series retaining at most `capacity` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (pairwise downsampling needs an even,
    /// nontrivial buffer; odd capacities are rounded down).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "series capacity must be at least 2");
        StackSeries {
            capacity: capacity & !1,
            scale: 1,
            buckets: Vec::new(),
            pending: None,
            pending_count: 0,
            total_pushed: 0,
        }
    }

    /// Appends one source window, downsampling if the buffer is full.
    pub fn push(&mut self, window: T) {
        self.total_pushed += 1;
        match &mut self.pending {
            Some(p) => {
                p.merge_window(&window);
                self.pending_count += 1;
            }
            None => {
                self.pending = Some(window);
                self.pending_count = 1;
            }
        }
        if self.pending_count == self.scale {
            let bucket = self.pending.take().expect("pending bucket exists");
            self.pending_count = 0;
            self.buckets.push(bucket);
            // Downsample only once full, *after* appending: every bucket
            // then covers exactly `scale` windows when pairs merge, so
            // retained buckets stay homogeneous.
            if self.buckets.len() == self.capacity {
                self.downsample();
            }
        }
    }

    /// Merges adjacent bucket pairs in place: buffer halves, scale doubles.
    fn downsample(&mut self) {
        debug_assert!(self.buckets.len().is_multiple_of(2));
        for i in 0..self.buckets.len() / 2 {
            let (a, b) = (2 * i, 2 * i + 1);
            let next = self.buckets[b].clone();
            self.buckets[a].merge_window(&next);
            self.buckets.swap(i, a);
        }
        self.buckets.truncate(self.buckets.len() / 2);
        self.scale *= 2;
    }

    /// Completed buckets, oldest first. Each covers [`scale`](Self::scale)
    /// source windows (the trailing partial bucket is in
    /// [`pending`](Self::pending)).
    pub fn buckets(&self) -> &[T] {
        &self.buckets
    }

    /// The partially filled trailing bucket, if any.
    pub fn pending(&self) -> Option<&T> {
        self.pending.as_ref()
    }

    /// Source windows folded into each completed bucket (a power of two).
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Completed buckets currently retained.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no window was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.total_pushed == 0
    }

    /// Maximum number of retained buckets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total source windows pushed over the series' lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A window carrying a cycle count and its first-cycle stamp, so tests
    /// can check both conservation and ordering.
    #[derive(Debug, Clone, PartialEq)]
    struct W {
        start: u64,
        cycles: u64,
    }

    impl WindowMerge for W {
        fn merge_window(&mut self, next: &Self) {
            self.cycles += next.cycles;
        }
    }

    fn total(s: &StackSeries<W>) -> u64 {
        s.buckets().iter().map(|w| w.cycles).sum::<u64>() + s.pending().map_or(0, |w| w.cycles)
    }

    #[test]
    fn fills_without_downsampling_below_capacity() {
        let mut s = StackSeries::new(8);
        for i in 0..7 {
            s.push(W {
                start: i,
                cycles: 10,
            });
        }
        assert_eq!(s.len(), 7);
        assert_eq!(s.scale(), 1);
        assert!(s.pending().is_none());
        assert_eq!(
            s.buckets()[3],
            W {
                start: 3,
                cycles: 10
            }
        );
    }

    #[test]
    fn downsampling_conserves_cycles_and_bounds_memory() {
        let mut s = StackSeries::new(8);
        for i in 0..1000 {
            s.push(W {
                start: i,
                cycles: 7,
            });
            assert!(s.len() <= 8, "capacity exceeded at window {i}");
            assert_eq!(total(&s), (i + 1) * 7, "cycles lost at window {i}");
        }
        assert_eq!(s.total_pushed(), 1000);
        // Scale doubles whenever the buffer fills (at 8·scale windows):
        // 8·64 = 512 ≤ 1000 < 8·128 = 1024, so scale reached 128.
        assert_eq!(s.scale(), 128);
    }

    #[test]
    fn buckets_stay_in_time_order_across_downsampling() {
        let mut s = StackSeries::new(4);
        for i in 0..64 {
            s.push(W {
                start: i,
                cycles: 1,
            });
        }
        let starts: Vec<u64> = s.buckets().iter().map(|w| w.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "buckets out of order: {starts:?}");
        assert_eq!(starts[0], 0, "oldest bucket must keep the run's origin");
    }

    #[test]
    fn scale_is_always_a_power_of_two() {
        let mut s = StackSeries::new(4);
        for i in 0..777 {
            s.push(W {
                start: i,
                cycles: 1,
            });
            assert!(s.scale().is_power_of_two());
        }
    }

    #[test]
    fn odd_capacity_rounds_down() {
        let s: StackSeries<W> = StackSeries::new(5);
        assert_eq!(s.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 2")]
    fn capacity_one_is_rejected() {
        let _: StackSeries<W> = StackSeries::new(1);
    }
}
