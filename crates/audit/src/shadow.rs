//! The shadow JEDEC protocol auditor.
//!
//! [`ProtocolAuditor`] is a deliberately simple, *independent*
//! re-implementation of the DDR4 timing rules. It observes every command
//! the controller issues (via the `obs::Probe` command hook) and checks it
//! against its own bookkeeping — it shares **no code** with the device
//! model in `dramstack-dram`: no `Bank`/`RankTimingState`/`DataBus` types,
//! no `earliest_*` helpers, not even `TimingParams` methods. The only
//! thing taken from the device configuration is the raw parameter
//! *values*, copied field by field into [`ShadowTiming`] at construction.
//! A bookkeeping bug in the optimized device model therefore cannot hide
//! itself by also corrupting the checker.
//!
//! Rules checked per command:
//!
//! * `ACT` — tRP (precharge done), tRC (row cycle), tRRD_S/L (ACT-to-ACT
//!   spacing), tFAW (four-activate window), tRFC (rank not refreshing),
//!   row-buffer state (bank must be precharged).
//! * `RD`/`RDA`/`WR`/`WRA` — tRCD, tCCD_S/L, tWTR_S/L (reads after a
//!   write), read-to-write bus turnaround (writes after a read), data-bus
//!   burst overlap, tRFC, row-buffer state (a row must be open).
//! * `PRE` — tRAS, tRTP, tWR, tRFC, row-buffer state.
//! * `REF` — tRFC (back-to-back), tREFI cadence (±8×tREFI JEDEC
//!   postponement allowance), all banks of the rank idle.
//!
//! Violations are recorded (never panicked on) and bookkeeping continues
//! updating afterwards, so one early command does not cascade into a wall
//! of spurious reports.

use serde::{Deserialize, Serialize};

use dramstack_dram::{BankAddr, Command, CommandKind, Cycle, DeviceConfig};

use crate::report::{AuditRule, AuditViolation, MAX_RECORDED};

/// The auditor's own snapshot of the JEDEC parameters, copied field by
/// field from the device configuration (values only — see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowTiming {
    /// READ command to first data beat.
    pub cl: Cycle,
    /// WRITE command to first data beat.
    pub cwl: Cycle,
    /// Data burst length in bus cycles.
    pub burst: Cycle,
    /// ACT to CAS.
    pub t_rcd: Cycle,
    /// PRE to ACT.
    pub t_rp: Cycle,
    /// ACT to PRE.
    pub t_ras: Cycle,
    /// ACT to ACT, same bank.
    pub t_rc: Cycle,
    /// CAS to CAS, different bank group.
    pub t_ccd_s: Cycle,
    /// CAS to CAS, same bank group.
    pub t_ccd_l: Cycle,
    /// ACT to ACT, different bank group.
    pub t_rrd_s: Cycle,
    /// ACT to ACT, same bank group.
    pub t_rrd_l: Cycle,
    /// Four-activate window.
    pub t_faw: Cycle,
    /// READ to PRE.
    pub t_rtp: Cycle,
    /// End of write burst to PRE.
    pub t_wr: Cycle,
    /// End of write burst to READ, different bank group.
    pub t_wtr_s: Cycle,
    /// End of write burst to READ, same bank group.
    pub t_wtr_l: Cycle,
    /// Bus bubble between a read burst and a following write burst.
    pub rtw_gap: Cycle,
    /// Average refresh interval.
    pub t_refi: Cycle,
    /// Refresh cycle time.
    pub t_rfc: Cycle,
}

impl ShadowTiming {
    /// Copies the raw parameter values out of a device configuration.
    pub fn from_config(cfg: &DeviceConfig) -> Self {
        let t = &cfg.timing;
        ShadowTiming {
            cl: t.cl,
            cwl: t.cwl,
            burst: t.burst_cycles,
            t_rcd: t.t_rcd,
            t_rp: t.t_rp,
            t_ras: t.t_ras,
            t_rc: t.t_rc,
            t_ccd_s: t.t_ccd_s,
            t_ccd_l: t.t_ccd_l,
            t_rrd_s: t.t_rrd_s,
            t_rrd_l: t.t_rrd_l,
            t_faw: t.t_faw,
            t_rtp: t.t_rtp,
            t_wr: t.t_wr,
            t_wtr_s: t.t_wtr_s,
            t_wtr_l: t.t_wtr_l,
            rtw_gap: t.rtw_gap,
            t_refi: t.t_refi,
            t_rfc: t.t_rfc,
        }
    }
}

/// JEDEC allows refreshes to be postponed or pulled in by up to eight
/// tREFI intervals.
const REFI_SLACK: Cycle = 8;

/// Shadow state of one bank's row buffer and per-bank timing windows.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct ShadowBank {
    /// The open row, if any.
    open_row: Option<u32>,
    /// Issue cycle of the last ACT (valid once `ever_activated`).
    act_at: Cycle,
    ever_activated: bool,
    /// Earliest cycle the next ACT may issue (tRP after the last PRE).
    pre_done_at: Cycle,
    /// `act_at + tRAS`: earliest PRE with respect to row-active time.
    ras_until: Cycle,
    /// Last read CAS + tRTP: earliest PRE with respect to read-to-PRE.
    rtp_until: Cycle,
    /// Last write burst end + tWR: earliest PRE w.r.t. write recovery.
    wr_until: Cycle,
    /// A scheduled auto-precharge (RDA/WRA) that has not started yet.
    auto_pre_at: Option<Cycle>,
}

impl ShadowBank {
    /// Applies a scheduled auto-precharge whose start has passed.
    fn settle(&mut self, now: Cycle, t_rp: Cycle) {
        if let Some(start) = self.auto_pre_at {
            if start <= now {
                self.open_row = None;
                self.pre_done_at = start + t_rp;
                self.auto_pre_at = None;
            }
        }
    }

    /// Earliest cycle a PRE (explicit or auto) may begin, and the rule
    /// that binds it.
    fn pre_allowed(&self) -> (Cycle, AuditRule) {
        let mut at = self.ras_until;
        let mut rule = AuditRule::TRas;
        if self.rtp_until > at {
            at = self.rtp_until;
            rule = AuditRule::TRtp;
        }
        if self.wr_until > at {
            at = self.wr_until;
            rule = AuditRule::TWr;
        }
        (at, rule)
    }

    /// Whether the bank is idle enough for its rank to refresh: row
    /// closed, no auto-precharge pending, precharge complete.
    fn idle_for_refresh(&self, now: Cycle) -> bool {
        self.open_row.is_none() && self.auto_pre_at.is_none() && now >= self.pre_done_at
    }
}

/// Shadow state of one rank: ACT/CAS spacing, tFAW window, refresh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ShadowRank {
    /// Issue cycles of up to the last four ACTs (for tFAW).
    faw_window: Vec<Cycle>,
    last_act_any: Option<Cycle>,
    last_act_bg: Vec<Option<Cycle>>,
    last_cas_any: Option<Cycle>,
    last_cas_bg: Vec<Option<Cycle>>,
    last_write_cas_any: Option<Cycle>,
    last_write_cas_bg: Vec<Option<Cycle>>,
    /// End of the refresh in progress (commands illegal before this).
    refresh_until: Cycle,
    /// Refreshes observed so far (for the tREFI cadence bound).
    refreshes_done: u64,
}

impl ShadowRank {
    fn new(bank_groups: usize) -> Self {
        ShadowRank {
            faw_window: Vec::with_capacity(4),
            last_act_any: None,
            last_act_bg: vec![None; bank_groups],
            last_cas_any: None,
            last_cas_bg: vec![None; bank_groups],
            last_write_cas_any: None,
            last_write_cas_bg: vec![None; bank_groups],
            refresh_until: 0,
            refreshes_done: 0,
        }
    }
}

/// One violated rule with its earliest-legal cycle, collected while
/// checking a command.
#[derive(Debug, Clone, Copy)]
struct Breach {
    rule: AuditRule,
    earliest: Cycle,
}

/// The shadow protocol auditor (see module docs).
///
/// Feed it every issued command via [`observe`](Self::observe); read the
/// findings with [`violations`](Self::violations). It can be used
/// standalone or wrapped in the probe adapters from
/// [`probe`](crate::probe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolAuditor {
    t: ShadowTiming,
    bank_groups: usize,
    banks_per_group: usize,
    banks: Vec<ShadowBank>,
    ranks: Vec<ShadowRank>,
    /// End of every burst reserved so far is `<= bus_free_at`.
    bus_free_at: Cycle,
    /// End of the most recent *read* burst (for read-to-write turnaround).
    last_read_burst_end: Cycle,
    commands: u64,
    violations_total: u64,
    violations: Vec<AuditViolation>,
}

impl ProtocolAuditor {
    /// Builds an auditor for a channel with the given configuration.
    pub fn new(cfg: &DeviceConfig) -> Self {
        let g = &cfg.geometry;
        let (ranks, bgs, bpg) = (
            g.ranks as usize,
            g.bank_groups as usize,
            g.banks_per_group as usize,
        );
        ProtocolAuditor {
            t: ShadowTiming::from_config(cfg),
            bank_groups: bgs,
            banks_per_group: bpg,
            banks: vec![ShadowBank::default(); ranks * bgs * bpg],
            ranks: (0..ranks).map(|_| ShadowRank::new(bgs)).collect(),
            bus_free_at: 0,
            last_read_burst_end: 0,
            commands: 0,
            violations_total: 0,
            violations: Vec::new(),
        }
    }

    /// Commands checked so far.
    pub fn commands_observed(&self) -> u64 {
        self.commands
    }

    /// Total violations found (including beyond the recording cap).
    pub fn violations_total(&self) -> u64 {
        self.violations_total
    }

    /// The recorded violations, in observation order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// The first violation, if any.
    pub fn first_violation(&self) -> Option<&AuditViolation> {
        self.violations.first()
    }

    /// Whether no violation has been observed.
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }

    fn flat(&self, b: BankAddr) -> usize {
        (b.rank as usize * self.bank_groups + b.bank_group as usize) * self.banks_per_group
            + b.bank as usize
    }

    /// Checks one issued command and updates the shadow state.
    pub fn observe(&mut self, now: Cycle, cmd: Command) {
        self.commands += 1;
        let mut breaches: Vec<Breach> = Vec::new();
        match cmd.kind {
            CommandKind::Activate => self.observe_activate(now, cmd, &mut breaches),
            CommandKind::Precharge => self.observe_precharge(now, cmd, &mut breaches),
            k if k.is_cas() => self.observe_cas(now, cmd, &mut breaches),
            _ => self.observe_refresh(now, cmd, &mut breaches),
        }
        if let Some(binding) =
            breaches
                .into_iter()
                .reduce(|a, b| if b.earliest > a.earliest { b } else { a })
        {
            self.record(now, cmd, binding);
        }
    }

    fn record(&mut self, now: Cycle, cmd: Command, b: Breach) {
        self.violations_total += 1;
        if self.violations.len() < MAX_RECORDED {
            let detail = if b.earliest == Cycle::MAX {
                "illegal in the bank's current row-buffer state".to_string()
            } else {
                format!(
                    "issued {} cycle(s) before the {} constraint allows",
                    b.earliest - now,
                    b.rule
                )
            };
            self.violations.push(AuditViolation {
                at: now,
                kind: cmd.kind,
                bank: cmd.bank,
                row: cmd.row,
                column: cmd.column,
                rule: b.rule,
                earliest_legal: b.earliest,
                detail,
            });
        }
    }

    fn check_refresh_blackout(rank: &ShadowRank, now: Cycle, breaches: &mut Vec<Breach>) {
        if now < rank.refresh_until {
            breaches.push(Breach {
                rule: AuditRule::TRfc,
                earliest: rank.refresh_until,
            });
        }
    }

    fn observe_activate(&mut self, now: Cycle, cmd: Command, breaches: &mut Vec<Breach>) {
        let flat = self.flat(cmd.bank);
        let bg = cmd.bank.bank_group as usize;
        let t = self.t;
        self.banks[flat].settle(now, t.t_rp);
        let rank = &self.ranks[cmd.bank.rank as usize];
        Self::check_refresh_blackout(rank, now, breaches);
        // tRRD_S / tRRD_L / tFAW (rank scope).
        if let Some(last) = rank.last_act_any {
            if now < last + t.t_rrd_s {
                breaches.push(Breach {
                    rule: AuditRule::TRrdS,
                    earliest: last + t.t_rrd_s,
                });
            }
        }
        if let Some(last) = rank.last_act_bg[bg] {
            if now < last + t.t_rrd_l {
                breaches.push(Breach {
                    rule: AuditRule::TRrdL,
                    earliest: last + t.t_rrd_l,
                });
            }
        }
        if rank.faw_window.len() == 4 {
            let oldest = rank.faw_window[0];
            if now < oldest + t.t_faw {
                breaches.push(Breach {
                    rule: AuditRule::TFaw,
                    earliest: oldest + t.t_faw,
                });
            }
        }
        // Bank scope: row buffer must be precharged, tRP elapsed, tRC
        // elapsed since the previous ACT.
        let bank = &self.banks[flat];
        if bank.open_row.is_some() || bank.auto_pre_at.is_some() {
            breaches.push(Breach {
                rule: AuditRule::RowState,
                earliest: Cycle::MAX,
            });
        }
        if now < bank.pre_done_at {
            breaches.push(Breach {
                rule: AuditRule::TRp,
                earliest: bank.pre_done_at,
            });
        }
        if bank.ever_activated && now < bank.act_at + t.t_rc {
            breaches.push(Breach {
                rule: AuditRule::TRc,
                earliest: bank.act_at + t.t_rc,
            });
        }
        // Update shadow state.
        let rank = &mut self.ranks[cmd.bank.rank as usize];
        rank.last_act_any = Some(now);
        rank.last_act_bg[bg] = Some(now);
        if rank.faw_window.len() == 4 {
            rank.faw_window.remove(0);
        }
        rank.faw_window.push(now);
        let bank = &mut self.banks[flat];
        bank.open_row = Some(cmd.row);
        bank.act_at = now;
        bank.ever_activated = true;
        bank.ras_until = now + t.t_ras;
        bank.auto_pre_at = None;
    }

    fn observe_precharge(&mut self, now: Cycle, cmd: Command, breaches: &mut Vec<Breach>) {
        let flat = self.flat(cmd.bank);
        let t = self.t;
        self.banks[flat].settle(now, t.t_rp);
        Self::check_refresh_blackout(&self.ranks[cmd.bank.rank as usize], now, breaches);
        let bank = &self.banks[flat];
        if bank.open_row.is_none() {
            // Precharging a precharged bank is a controller bookkeeping
            // bug in this model (the scheduler only PREs to open a
            // different row).
            breaches.push(Breach {
                rule: AuditRule::RowState,
                earliest: Cycle::MAX,
            });
        }
        let (allowed, rule) = bank.pre_allowed();
        if now < allowed {
            breaches.push(Breach {
                rule,
                earliest: allowed,
            });
        }
        let bank = &mut self.banks[flat];
        bank.open_row = None;
        bank.auto_pre_at = None;
        bank.pre_done_at = now + t.t_rp;
    }

    fn observe_cas(&mut self, now: Cycle, cmd: Command, breaches: &mut Vec<Breach>) {
        let flat = self.flat(cmd.bank);
        let bg = cmd.bank.bank_group as usize;
        let t = self.t;
        let is_write = cmd.kind.is_write();
        self.banks[flat].settle(now, t.t_rp);
        let rank = &self.ranks[cmd.bank.rank as usize];
        Self::check_refresh_blackout(rank, now, breaches);
        // CAS-to-CAS spacing (rank scope).
        if let Some(last) = rank.last_cas_any {
            if now < last + t.t_ccd_s {
                breaches.push(Breach {
                    rule: AuditRule::TCcdS,
                    earliest: last + t.t_ccd_s,
                });
            }
        }
        if let Some(last) = rank.last_cas_bg[bg] {
            if now < last + t.t_ccd_l {
                breaches.push(Breach {
                    rule: AuditRule::TCcdL,
                    earliest: last + t.t_ccd_l,
                });
            }
        }
        // Write-to-read turnaround: tWTR runs from the end of the write
        // burst (write CAS + CWL + burst).
        if !is_write {
            if let Some(wr) = rank.last_write_cas_any {
                let legal = wr + t.cwl + t.burst + t.t_wtr_s;
                if now < legal {
                    breaches.push(Breach {
                        rule: AuditRule::TWtrS,
                        earliest: legal,
                    });
                }
            }
            if let Some(wr) = rank.last_write_cas_bg[bg] {
                let legal = wr + t.cwl + t.burst + t.t_wtr_l;
                if now < legal {
                    breaches.push(Breach {
                        rule: AuditRule::TWtrL,
                        earliest: legal,
                    });
                }
            }
        }
        // Bank scope: a row must be open and tRCD elapsed.
        let bank = &self.banks[flat];
        if bank.open_row.is_none() {
            breaches.push(Breach {
                rule: AuditRule::RowState,
                earliest: Cycle::MAX,
            });
        } else if now < bank.act_at + t.t_rcd {
            breaches.push(Breach {
                rule: AuditRule::TRcd,
                earliest: bank.act_at + t.t_rcd,
            });
        }
        // Shared data bus: bursts must not overlap, and a write burst
        // must leave the turnaround bubble after a read burst.
        let burst_start = now + if is_write { t.cwl } else { t.cl };
        let burst_end = burst_start + t.burst;
        if burst_start < self.bus_free_at {
            breaches.push(Breach {
                rule: AuditRule::BusOverlap,
                // Legal once the CAS is late enough for its burst to
                // start at the bus free cycle.
                earliest: now + (self.bus_free_at - burst_start),
            });
        }
        if is_write && self.last_read_burst_end > 0 {
            let legal_start = self.last_read_burst_end + t.rtw_gap;
            if burst_start < legal_start {
                breaches.push(Breach {
                    rule: AuditRule::ReadToWrite,
                    earliest: now + (legal_start - burst_start),
                });
            }
        }
        // Update shadow state.
        let rank = &mut self.ranks[cmd.bank.rank as usize];
        rank.last_cas_any = Some(now);
        rank.last_cas_bg[bg] = Some(now);
        if is_write {
            rank.last_write_cas_any = Some(now);
            rank.last_write_cas_bg[bg] = Some(now);
        }
        if burst_end > self.bus_free_at {
            self.bus_free_at = burst_end;
        }
        if !is_write && burst_end > self.last_read_burst_end {
            self.last_read_burst_end = burst_end;
        }
        let bank = &mut self.banks[flat];
        if is_write {
            let recovered = burst_end + t.t_wr;
            if recovered > bank.wr_until {
                bank.wr_until = recovered;
            }
        } else {
            let recovered = now + t.t_rtp;
            if recovered > bank.rtp_until {
                bank.rtp_until = recovered;
            }
        }
        if cmd.kind.auto_precharges() {
            let (allowed, _) = bank.pre_allowed();
            bank.auto_pre_at = Some(allowed);
        }
    }

    fn observe_refresh(&mut self, now: Cycle, cmd: Command, breaches: &mut Vec<Breach>) {
        let t = self.t;
        let r = cmd.bank.rank as usize;
        // Settle pending auto-precharges so bank idleness is current.
        let base = r * self.bank_groups * self.banks_per_group;
        let per_rank = self.bank_groups * self.banks_per_group;
        for bank in &mut self.banks[base..base + per_rank] {
            bank.settle(now, t.t_rp);
        }
        let rank = &self.ranks[r];
        Self::check_refresh_blackout(rank, now, breaches);
        // Cadence: REF number n (1-based) belongs near n*tREFI; JEDEC
        // allows postponing or pulling in by up to eight intervals.
        let n = rank.refreshes_done + 1;
        let due = n * t.t_refi;
        if now + REFI_SLACK * t.t_refi < due {
            breaches.push(Breach {
                rule: AuditRule::TRefi,
                earliest: due - REFI_SLACK * t.t_refi,
            });
        }
        if now > due + REFI_SLACK * t.t_refi {
            // Too late: there is no future legal cycle for a refresh that
            // already starved, so the earliest-legal is the deadline.
            breaches.push(Breach {
                rule: AuditRule::TRefi,
                earliest: due + REFI_SLACK * t.t_refi,
            });
        }
        // Every bank of the rank must be idle.
        if self.banks[base..base + per_rank]
            .iter()
            .any(|b| !b.idle_for_refresh(now))
        {
            breaches.push(Breach {
                rule: AuditRule::RowState,
                earliest: Cycle::MAX,
            });
        }
        let rank = &mut self.ranks[r];
        rank.refreshes_done += 1;
        rank.refresh_until = now + t.t_rfc;
        for bank in &mut self.banks[base..base + per_rank] {
            bank.open_row = None;
            bank.auto_pre_at = None;
            if now + t.t_rfc > bank.pre_done_at {
                bank.pre_done_at = now + t.t_rfc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> ProtocolAuditor {
        ProtocolAuditor::new(&DeviceConfig::ddr4_2400())
    }

    fn b(g: u32, k: u32) -> BankAddr {
        BankAddr::new(0, g, k)
    }

    #[test]
    fn legal_read_sequence_is_clean() {
        let mut a = auditor();
        // ACT, wait tRCD, RD, wait tRTP-compatible PRE, wait tRP, ACT.
        a.observe(100, Command::activate(b(0, 0), 5));
        a.observe(117, Command::read(b(0, 0), 3)); // tRCD = 17
        a.observe(139, Command::precharge(b(0, 0))); // tRAS = 39 binds
        a.observe(156, Command::activate(b(0, 0), 6)); // tRP = 17, tRC = 56
        a.observe(173, Command::read(b(0, 0), 4));
        assert!(a.is_clean(), "{:?}", a.first_violation());
        assert_eq!(a.commands_observed(), 5);
    }

    #[test]
    fn early_cas_breaks_trcd() {
        let mut a = auditor();
        a.observe(100, Command::activate(b(0, 0), 5));
        a.observe(116, Command::read(b(0, 0), 3)); // one early
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::TRcd);
        assert_eq!(v.earliest_legal, 117);
        assert_eq!(v.at, 116);
    }

    #[test]
    fn early_precharge_breaks_tras() {
        let mut a = auditor();
        a.observe(100, Command::activate(b(0, 0), 5));
        a.observe(117, Command::read(b(0, 0), 3));
        a.observe(137, Command::precharge(b(0, 0))); // tRAS ends at 139
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::TRas);
        assert_eq!(v.earliest_legal, 139);
    }

    #[test]
    fn fifth_act_in_window_breaks_tfaw() {
        let mut a = auditor();
        // tRRD_S = 4, tFAW = 26: four ACTs at 0,4,8,12 are legal, a fifth
        // at 16 violates tFAW (earliest 0 + 26 = 26).
        for (i, at) in [0u64, 4, 8, 12].into_iter().enumerate() {
            a.observe(at, Command::activate(b((i % 4) as u32, (i / 4) as u32), 1));
        }
        assert!(a.is_clean());
        a.observe(16, Command::activate(b(0, 1), 1));
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::TFaw);
        assert_eq!(v.earliest_legal, 26);
    }

    #[test]
    fn write_then_early_read_breaks_twtr() {
        let mut a = auditor();
        a.observe(0, Command::activate(b(0, 0), 1));
        a.observe(17, Command::write(b(0, 0), 0));
        // Write burst ends 17 + 12 + 4 = 33; same-bg read legal at 33 +
        // tWTR_L(9) = 42.
        a.observe(38, Command::read(b(0, 0), 1));
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::TWtrL);
        assert_eq!(v.earliest_legal, 42);
    }

    #[test]
    fn refresh_with_open_row_is_flagged() {
        let mut a = auditor();
        a.observe(0, Command::activate(b(0, 0), 1));
        a.observe(9360, Command::refresh(0));
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::RowState);
    }

    #[test]
    fn command_during_refresh_breaks_trfc() {
        let mut a = auditor();
        a.observe(9360, Command::refresh(0));
        a.observe(9400, Command::activate(b(0, 0), 1)); // tRFC = 420
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::TRfc);
        assert_eq!(v.earliest_legal, 9360 + 420);
    }

    #[test]
    fn auto_precharge_closes_the_row_in_the_shadow() {
        let mut a = auditor();
        a.observe(0, Command::activate(b(0, 0), 1));
        a.observe(17, Command::read_ap(b(0, 0), 0));
        // Auto-pre starts at tRAS end (39, since 17 + tRTP = 26 < 39) and
        // finishes at 39 + 17 = 56; tRC also ends at 56.
        a.observe(56, Command::activate(b(0, 0), 2));
        assert!(a.is_clean(), "{:?}", a.first_violation());
        // A CAS one cycle into the new row-open is still tRCD-bound.
        a.observe(57, Command::read(b(0, 0), 0));
        let v = a.first_violation().expect("violation");
        assert_eq!(v.rule, AuditRule::TRcd);
    }

    #[test]
    fn binding_rule_is_the_latest_earliest_legal() {
        let mut a = auditor();
        a.observe(0, Command::activate(b(0, 0), 1));
        // PRE at 10 violates tRAS (legal 39); ACT straight after at 11
        // violates both tRP (legal 27) and tRC (legal 56) — tRC binds.
        a.observe(10, Command::precharge(b(0, 0)));
        a.observe(11, Command::activate(b(0, 0), 2));
        assert_eq!(a.violations_total(), 2);
        let v = &a.violations()[1];
        assert_eq!(v.rule, AuditRule::TRc);
        assert_eq!(v.earliest_legal, 56);
    }

    #[test]
    fn bookkeeping_survives_a_violation() {
        let mut a = auditor();
        a.observe(0, Command::activate(b(0, 0), 1));
        a.observe(5, Command::read(b(0, 0), 0)); // early (tRCD)
        assert_eq!(a.violations_total(), 1);
        // Subsequent legal traffic stays clean.
        a.observe(17, Command::read(b(0, 0), 1));
        assert_eq!(a.violations_total(), 1);
    }
}
