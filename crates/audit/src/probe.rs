//! Probe adapters arming the shadow auditor on a live controller.
//!
//! [`AuditProbe`] plugs into the controller's `obs::Probe` socket and
//! forwards every issued command to a shared [`ProtocolAuditor`];
//! [`AuditHandle`] keeps access to the findings (and accumulates
//! conservation failures) after the probe has been handed over. The pair
//! shares state through `Rc<RefCell<…>>`, mirroring the
//! `ChromeTraceProbe`/`ChromeTraceHandle` split in `dramstack-obs`.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use dramstack_dram::{Command, Cycle, DeviceConfig};
use dramstack_memctrl::CompletedRead;
use dramstack_obs::Probe;

use crate::conserve;
use crate::report::{AuditReport, AuditViolation, ConservationFailure, MAX_RECORDED};
use crate::shadow::ProtocolAuditor;

#[derive(Debug)]
struct AuditShared {
    auditor: ProtocolAuditor,
    reads_checked: u64,
    conservation_total: u64,
    conservation: Vec<ConservationFailure>,
}

/// Serializable state of an armed audit channel — the shadow auditor's
/// full bookkeeping plus the conservation counters. Captured by
/// [`AuditHandle::snapshot_state`] so a restored simulation resumes with
/// the exact audit history (the final [`AuditReport`] is part of report
/// bit-identity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditState {
    auditor: ProtocolAuditor,
    reads_checked: u64,
    conservation_total: u64,
    conservation: Vec<ConservationFailure>,
}

/// The probe half: attach to a controller (directly or inside a
/// `TeeProbe`) to feed it every issued command.
#[derive(Debug)]
pub struct AuditProbe {
    inner: Rc<RefCell<AuditShared>>,
}

impl Probe for AuditProbe {
    fn command_issued(&mut self, now: Cycle, cmd: Command, _flat_bank: usize) {
        self.inner.borrow_mut().auditor.observe(now, cmd);
    }

    /// The auditor is purely event-driven, so idle fast-forwarding stays
    /// enabled while it is armed.
    fn wants_ticks(&self) -> bool {
        false
    }
}

/// The handle half: query findings, feed conservation checks, build the
/// final [`AuditReport`].
#[derive(Debug, Clone)]
pub struct AuditHandle {
    inner: Rc<RefCell<AuditShared>>,
}

impl AuditHandle {
    /// Mints another probe sharing this handle's auditor (used to tee the
    /// auditor alongside a user probe).
    pub fn probe(&self) -> AuditProbe {
        AuditProbe {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Commands audited so far.
    pub fn commands_observed(&self) -> u64 {
        self.inner.borrow().auditor.commands_observed()
    }

    /// Total protocol violations found so far.
    pub fn violations_total(&self) -> u64 {
        self.inner.borrow().auditor.violations_total()
    }

    /// Clones out the recorded violations.
    pub fn violations(&self) -> Vec<AuditViolation> {
        self.inner.borrow().auditor.violations().to_vec()
    }

    /// Whether nothing has been flagged yet (protocol or conservation).
    pub fn is_clean(&self) -> bool {
        let s = self.inner.borrow();
        s.auditor.is_clean() && s.conservation_total == 0
    }

    /// Runs the per-read latency-conservation check on a completed read.
    pub fn check_completion(&self, c: &CompletedRead) {
        let mut s = self.inner.borrow_mut();
        s.reads_checked += 1;
        if let Some(f) = conserve::check_read(c) {
            s.conservation_total += 1;
            if s.conservation.len() < MAX_RECORDED {
                s.conservation.push(f);
            }
        }
    }

    /// Records an externally detected conservation failure (window or
    /// aggregate checks run by the simulator at report time).
    pub fn record_conservation(&self, f: ConservationFailure) {
        let mut s = self.inner.borrow_mut();
        s.conservation_total += 1;
        if s.conservation.len() < MAX_RECORDED {
            s.conservation.push(f);
        }
    }

    /// Captures the full audit state (shadow bookkeeping + conservation
    /// counters) for a simulator snapshot.
    pub fn snapshot_state(&self) -> AuditState {
        let s = self.inner.borrow();
        AuditState {
            auditor: s.auditor.clone(),
            reads_checked: s.reads_checked,
            conservation_total: s.conservation_total,
            conservation: s.conservation.clone(),
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state)
    /// into this (re-armed) channel.
    pub fn restore_state(&self, state: &AuditState) {
        let mut s = self.inner.borrow_mut();
        s.auditor = state.auditor.clone();
        s.reads_checked = state.reads_checked;
        s.conservation_total = state.conservation_total;
        s.conservation = state.conservation.clone();
    }

    /// Snapshots everything into a report (`armed` is always true — an
    /// unarmed run simply has no handle).
    pub fn report(&self) -> AuditReport {
        let s = self.inner.borrow();
        AuditReport {
            armed: true,
            commands_audited: s.auditor.commands_observed(),
            reads_checked: s.reads_checked,
            violations_total: s.auditor.violations_total(),
            violations: s.auditor.violations().to_vec(),
            conservation_total: s.conservation_total,
            conservation: s.conservation.clone(),
        }
    }
}

/// Builds an armed probe/handle pair for one channel.
pub fn audit_channel(cfg: &DeviceConfig) -> (AuditProbe, AuditHandle) {
    let inner = Rc::new(RefCell::new(AuditShared {
        auditor: ProtocolAuditor::new(cfg),
        reads_checked: 0,
        conservation_total: 0,
        conservation: Vec::new(),
    }));
    (
        AuditProbe {
            inner: Rc::clone(&inner),
        },
        AuditHandle { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_dram::BankAddr;

    #[test]
    fn probe_and_handle_share_state() {
        let cfg = DeviceConfig::ddr4_2400();
        let (mut probe, handle) = audit_channel(&cfg);
        let b = BankAddr::new(0, 0, 0);
        probe.command_issued(0, Command::activate(b, 1), 0);
        probe.command_issued(5, Command::read(b, 0), 0); // tRCD broken
        assert_eq!(handle.commands_observed(), 2);
        assert_eq!(handle.violations_total(), 1);
        assert!(!handle.is_clean());
        let report = handle.report();
        assert!(report.armed);
        assert_eq!(report.violations_total, 1);
    }

    #[test]
    fn minted_probes_feed_the_same_auditor() {
        let cfg = DeviceConfig::ddr4_2400();
        let (mut p1, handle) = audit_channel(&cfg);
        let mut p2 = handle.probe();
        let b = BankAddr::new(0, 0, 0);
        p1.command_issued(0, Command::activate(b, 1), 0);
        p2.command_issued(17, Command::read(b, 0), 0);
        assert_eq!(handle.commands_observed(), 2);
        assert!(handle.is_clean());
    }

    #[test]
    fn audit_probe_declines_ticks() {
        let cfg = DeviceConfig::ddr4_2400();
        let (probe, _handle) = audit_channel(&cfg);
        assert!(!probe.wants_ticks());
    }
}
