//! Stack-conservation invariants.
//!
//! The paper's stacks are accounting identities: every DRAM cycle lands in
//! exactly one bandwidth-stack component, and every cycle of a read's
//! latency lands in exactly one latency-stack component. These checks make
//! the identities enforceable at runtime instead of only by construction.

use dramstack_core::{BandwidthStack, TimeSample};
use dramstack_memctrl::CompletedRead;

use crate::report::{ConservationFailure, ConservationKind};

/// Relative tolerance for floating-point weight sums (matches
/// `BandwidthStack::is_consistent`).
const REL_EPS: f64 = 1e-6;

/// Checks that one completed read's latency components sum to its
/// measured service interval (`done_at - arrival`), integer-exact.
///
/// The check is strict equality: the controller charges every waiting
/// cycle to exactly one component as it happens (write drain, refresh,
/// caused PRE/ACT, or plain queueing) and `base_dram` covers the CAS-to-
/// data interval by construction, so components can neither overlap nor
/// leave a residual. Any mismatch — over *or* under — is a broken
/// accounting identity.
pub fn check_read(c: &CompletedRead) -> Option<ConservationFailure> {
    let measured = c.done_at.saturating_sub(c.arrival);
    let attributed = c.breakdown.total();
    if attributed == measured {
        return None;
    }
    Some(ConservationFailure {
        kind: ConservationKind::ReadLatency,
        window: None,
        expected: measured as f64,
        actual: attributed as f64,
        detail: format!(
            "read {:#x} arrived {} done {}: components {:?} sum to {} not {}",
            c.addr, c.arrival, c.done_at, c.breakdown, attributed, measured
        ),
    })
}

/// Checks a bandwidth stack: components non-negative and summing to the
/// accounted cycles (within float tolerance).
fn check_stack(
    kind: ConservationKind,
    window: Option<usize>,
    stack: &BandwidthStack,
) -> Option<ConservationFailure> {
    let sum: f64 = stack.weights.iter().sum();
    let total = stack.total_cycles as f64;
    if let Some(w) = stack.weights.iter().find(|w| **w < -1e-9) {
        return Some(ConservationFailure {
            kind,
            window,
            expected: 0.0,
            actual: *w,
            detail: format!("negative component weight {w} in {:?}", stack.weights),
        });
    }
    if (sum - total).abs() >= REL_EPS * total.max(1.0) {
        return Some(ConservationFailure {
            kind,
            window,
            expected: total,
            actual: sum,
            detail: format!(
                "weights {:?} sum to {sum} over {} cycles",
                stack.weights, stack.total_cycles
            ),
        });
    }
    None
}

/// Checks one sample window: its bandwidth stack must be internally
/// consistent and must cover exactly the window's cycles.
pub fn check_window(index: usize, sample: &TimeSample) -> Option<ConservationFailure> {
    if sample.bandwidth.total_cycles != sample.cycles {
        return Some(ConservationFailure {
            kind: ConservationKind::BandwidthWindow,
            window: Some(index),
            expected: sample.cycles as f64,
            actual: sample.bandwidth.total_cycles as f64,
            detail: format!(
                "window {index} covers {} cycles but its stack accounted {}",
                sample.cycles, sample.bandwidth.total_cycles
            ),
        });
    }
    check_stack(
        ConservationKind::BandwidthWindow,
        Some(index),
        &sample.bandwidth,
    )
}

/// Checks the whole-run aggregate bandwidth stack.
pub fn check_aggregate(stack: &BandwidthStack) -> Option<ConservationFailure> {
    check_stack(ConservationKind::BandwidthAggregate, None, stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramstack_memctrl::{LatencyBreakdown, RequestId};

    fn read(arrival: u64, done_at: u64, b: LatencyBreakdown) -> CompletedRead {
        CompletedRead {
            id: RequestId(1),
            meta: 0,
            addr: 0x40,
            arrival,
            done_at,
            breakdown: b,
        }
    }

    #[test]
    fn exact_breakdown_passes() {
        let b = LatencyBreakdown {
            base_cntlr: 30,
            base_dram: 21,
            preact: 34,
            refresh: 0,
            writeburst: 0,
            queue: 15,
        };
        assert!(check_read(&read(100, 200, b)).is_none());
    }

    #[test]
    fn off_by_one_breakdown_is_caught() {
        let b = LatencyBreakdown {
            base_cntlr: 30,
            base_dram: 21,
            preact: 34,
            refresh: 0,
            writeburst: 0,
            queue: 14, // one cycle lost
        };
        let f = check_read(&read(100, 200, b)).expect("failure");
        assert_eq!(f.kind, ConservationKind::ReadLatency);
        assert_eq!(f.expected, 100.0);
        assert_eq!(f.actual, 99.0);
    }

    #[test]
    fn over_attribution_is_caught_even_with_zero_queue() {
        // Historically the controller clamped a residual `queue` at zero
        // and over-accounting with queue == 0 was tolerated. Attribution
        // is now per-cycle exact, so the same shape must fail.
        let overshoot = LatencyBreakdown {
            base_cntlr: 30,
            base_dram: 21,
            preact: 34,
            refresh: 0,
            writeburst: 25,
            queue: 0,
        };
        let f = check_read(&read(100, 200, overshoot)).expect("failure");
        assert_eq!(f.kind, ConservationKind::ReadLatency);
        assert_eq!(f.expected, 100.0);
        assert_eq!(f.actual, 110.0);
        // And with a nonzero queue component likewise.
        let broken = LatencyBreakdown {
            queue: 5,
            writeburst: 20,
            ..overshoot
        };
        assert!(check_read(&read(100, 200, broken)).is_some());
    }

    #[test]
    fn consistent_aggregate_passes_and_leaky_one_fails() {
        let mut s = BandwidthStack::empty(19.2);
        s.total_cycles = 1000;
        s.weights[0] = 600.0;
        s.weights[1] = 400.0;
        assert!(check_aggregate(&s).is_none());
        s.weights[1] = 399.0;
        let f = check_aggregate(&s).expect("failure");
        assert_eq!(f.kind, ConservationKind::BandwidthAggregate);
    }
}
