//! Runtime auditing for the dramstack simulator: a shadow JEDEC protocol
//! checker, stack-conservation invariants and a chaos/fault-injection
//! harness.
//!
//! The simulator's device model is optimized (span-based accounting, idle
//! fast-forward, allocation-free hot paths) — exactly the kind of code
//! where a subtle bookkeeping bug silently shifts results rather than
//! crashing. This crate provides the independent second opinion:
//!
//! * [`ProtocolAuditor`] — a deliberately simple re-implementation of the
//!   DDR4 timing rules that observes every issued command through the
//!   `obs::Probe` hook and reports violations as typed
//!   [`AuditViolation`]s (command, bank, binding constraint,
//!   earliest-legal cycle) instead of panicking. It shares *no code* with
//!   the device model; only raw parameter values cross the boundary.
//! * [`conserve`] — checks that the paper's stacks remain accounting
//!   identities at runtime: bandwidth-stack components sum to window
//!   cycles, latency-stack components sum (integer-exactly) to each
//!   read's measured latency.
//! * [`chaos`] — seeded random-but-valid configurations, adversarial
//!   traffic generators and a driver proving both soundness (clean
//!   controllers audit clean) and sensitivity (every [`SeededFault`]
//!   class is caught).
//!
//! Arm an auditor on a controller with [`audit_channel`]; embed findings
//! in reports with [`AuditReport`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod conserve;
mod probe;
mod report;
mod shadow;

pub use chaos::{drive, drive_interrupted, ChaosPattern, DriveOutcome, TrafficReq};
pub use probe::{audit_channel, AuditHandle, AuditProbe, AuditState};
pub use report::{
    AuditReport, AuditRule, AuditViolation, ConservationFailure, ConservationKind, MAX_RECORDED,
};
pub use shadow::{ProtocolAuditor, ShadowTiming};

// Re-exported so downstream users can name fault classes without a direct
// dependency on the device crate.
pub use dramstack_dram::SeededFault;
