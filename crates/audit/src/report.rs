//! Typed audit findings: protocol violations, conservation failures and
//! the per-run [`AuditReport`] embedded in simulation reports.

use std::fmt;

use serde::{Deserialize, Serialize};

use dramstack_dram::{BankAddr, CommandKind, Cycle};

/// The JEDEC rule (or state-machine invariant) a command violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditRule {
    /// ACT-to-CAS delay.
    TRcd,
    /// PRE-to-ACT delay.
    TRp,
    /// Minimum row-open time before PRE.
    TRas,
    /// ACT-to-ACT delay on the same bank (row cycle).
    TRc,
    /// CAS-to-CAS spacing across bank groups.
    TCcdS,
    /// CAS-to-CAS spacing within a bank group.
    TCcdL,
    /// ACT-to-ACT spacing across bank groups.
    TRrdS,
    /// ACT-to-ACT spacing within a bank group.
    TRrdL,
    /// At most four ACTs per rolling tFAW window.
    TFaw,
    /// Write-to-read turnaround across bank groups.
    TWtrS,
    /// Write-to-read turnaround within a bank group.
    TWtrL,
    /// Read-to-PRE delay.
    TRtp,
    /// Write-recovery-to-PRE delay.
    TWr,
    /// No command to a rank while its refresh (tRFC) is in progress.
    TRfc,
    /// Refresh cadence outside the ±8×tREFI postponement allowance.
    TRefi,
    /// Read-to-write data-bus turnaround bubble.
    ReadToWrite,
    /// Two data bursts overlapping on the shared bus.
    BusOverlap,
    /// Row-buffer state machine: CAS without an open row, ACT on an open
    /// bank, PRE on a precharged bank, or REF with a bank not idle.
    RowState,
}

impl fmt::Display for AuditRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditRule::TRcd => "tRCD",
            AuditRule::TRp => "tRP",
            AuditRule::TRas => "tRAS",
            AuditRule::TRc => "tRC",
            AuditRule::TCcdS => "tCCD_S",
            AuditRule::TCcdL => "tCCD_L",
            AuditRule::TRrdS => "tRRD_S",
            AuditRule::TRrdL => "tRRD_L",
            AuditRule::TFaw => "tFAW",
            AuditRule::TWtrS => "tWTR_S",
            AuditRule::TWtrL => "tWTR_L",
            AuditRule::TRtp => "tRTP",
            AuditRule::TWr => "tWR",
            AuditRule::TRfc => "tRFC",
            AuditRule::TRefi => "tREFI",
            AuditRule::ReadToWrite => "read-to-write turnaround",
            AuditRule::BusOverlap => "data-bus burst overlap",
            AuditRule::RowState => "row-buffer state",
        };
        f.write_str(s)
    }
}

/// One illegal command observed by the shadow auditor, with everything
/// needed to reproduce and understand it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// Cycle the command issued.
    pub at: Cycle,
    /// Command mnemonic.
    pub kind: CommandKind,
    /// Target bank (for REF, only the rank is meaningful).
    pub bank: BankAddr,
    /// Row operand (ACT only).
    pub row: u32,
    /// Column operand (CAS only).
    pub column: u32,
    /// The binding violated constraint (the one with the latest
    /// earliest-legal cycle when several were violated at once).
    pub rule: AuditRule,
    /// Earliest cycle at which the command would have been legal
    /// (`Cycle::MAX` for state violations with no legal cycle).
    pub earliest_legal: Cycle,
    /// Human-readable context: the rule arithmetic that failed.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {} {} violates {} (earliest legal {}): {}",
            self.at, self.kind, self.bank, self.rule, self.earliest_legal, self.detail
        )
    }
}

/// Which accounting identity a conservation check found broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConservationKind {
    /// A sample window's bandwidth-stack components do not sum to the
    /// window's cycles (or a component went negative).
    BandwidthWindow,
    /// The aggregate bandwidth stack is inconsistent.
    BandwidthAggregate,
    /// A completed read's latency components do not sum to its measured
    /// service time (`done_at - arrival`).
    ReadLatency,
}

impl fmt::Display for ConservationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConservationKind::BandwidthWindow => "bandwidth window",
            ConservationKind::BandwidthAggregate => "bandwidth aggregate",
            ConservationKind::ReadLatency => "read latency",
        };
        f.write_str(s)
    }
}

/// One broken stack-conservation invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConservationFailure {
    /// Which identity broke.
    pub kind: ConservationKind,
    /// Sample-window index, when the failure is per-window.
    pub window: Option<usize>,
    /// The value the identity requires.
    pub expected: f64,
    /// The value observed.
    pub actual: f64,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for ConservationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conservation broken: expected {}, got {} ({})",
            self.kind, self.expected, self.actual, self.detail
        )
    }
}

/// Everything the audit layer found during one run.
///
/// Embedded in `SimReport::audit`; an unarmed run carries the default
/// (all-zero, `armed == false`) report. Violation and failure lists are
/// capped — the totals keep counting past the cap.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Whether the shadow auditor observed this run.
    pub armed: bool,
    /// DRAM commands checked against the shadow rules.
    pub commands_audited: u64,
    /// Completed reads whose latency breakdown was conservation-checked.
    pub reads_checked: u64,
    /// Total protocol violations found (including beyond the list cap).
    pub violations_total: u64,
    /// The first violations found, in order (capped).
    pub violations: Vec<AuditViolation>,
    /// Total conservation failures found (including beyond the list cap).
    pub conservation_total: u64,
    /// The first conservation failures found, in order (capped).
    pub conservation: Vec<ConservationFailure>,
}

/// Cap on stored violations/failures per report; totals keep counting.
pub const MAX_RECORDED: usize = 256;

impl AuditReport {
    /// Whether the run was fully clean: no protocol violation and no
    /// broken conservation identity.
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0 && self.conservation_total == 0
    }

    /// The first (binding) protocol violation, if any.
    pub fn first_violation(&self) -> Option<&AuditViolation> {
        self.violations.first()
    }

    /// Folds another report into this one (multi-channel aggregation).
    pub fn merge(&mut self, other: &AuditReport) {
        self.armed |= other.armed;
        self.commands_audited += other.commands_audited;
        self.reads_checked += other.reads_checked;
        self.violations_total += other.violations_total;
        for v in &other.violations {
            if self.violations.len() < MAX_RECORDED {
                self.violations.push(v.clone());
            }
        }
        self.conservation_total += other.conservation_total;
        for c in &other.conservation {
            if self.conservation.len() < MAX_RECORDED {
                self.conservation.push(c.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_clean_and_unarmed() {
        let r = AuditReport::default();
        assert!(r.is_clean());
        assert!(!r.armed);
        assert!(r.first_violation().is_none());
    }

    #[test]
    fn merge_accumulates() {
        let v = AuditViolation {
            at: 10,
            kind: CommandKind::Read,
            bank: BankAddr::new(0, 1, 2),
            row: 0,
            column: 3,
            rule: AuditRule::TRcd,
            earliest_legal: 17,
            detail: "x".into(),
        };
        let mut a = AuditReport {
            armed: true,
            commands_audited: 5,
            ..Default::default()
        };
        let b = AuditReport {
            armed: true,
            commands_audited: 7,
            violations_total: 1,
            violations: vec![v.clone()],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commands_audited, 12);
        assert_eq!(a.violations_total, 1);
        assert_eq!(a.first_violation(), Some(&v));
        assert!(!a.is_clean());
    }

    #[test]
    fn violation_display_names_the_rule() {
        let v = AuditViolation {
            at: 33,
            kind: CommandKind::Activate,
            bank: BankAddr::new(0, 0, 0),
            row: 7,
            column: 0,
            rule: AuditRule::TFaw,
            earliest_legal: 40,
            detail: "fifth ACT inside the window".into(),
        };
        let s = v.to_string();
        assert!(s.contains("tFAW"), "{s}");
        assert!(s.contains("33"), "{s}");
        assert!(s.contains("40"), "{s}");
    }
}
