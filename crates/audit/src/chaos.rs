//! Chaos/fuzz harness: random-but-valid configurations, adversarial
//! traffic generators, and a driver that runs a memory controller with
//! the shadow auditor armed (optionally with a seeded bookkeeping fault).
//!
//! The harness answers two questions:
//!
//! * **Soundness** — on a correct controller, no adversarial traffic mix
//!   (refresh storms, write-burst thrash, single-bank hammering, tFAW
//!   pressure) under any valid configuration produces a violation.
//! * **Sensitivity** — every seeded fault class from
//!   [`SeededFault`] *is* caught, with an actionable diagnostic.
//!
//! All randomness is derived from explicit seeds (splitmix64), so every
//! case reproduces exactly.

use proptest::prelude::*;

use dramstack_dram::{BankAddr, Cycle, CycleView, DramAddress, SeededFault};
use dramstack_memctrl::{AddressMapping, CtrlConfig, MemoryController};

use crate::probe::audit_channel;
use crate::report::AuditReport;

/// One memory request for the chaos driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReq {
    /// Earliest cycle the request may enter the controller.
    pub at: Cycle,
    /// Write (true) or read (false).
    pub write: bool,
    /// Physical line address.
    pub addr: u64,
}

/// Deterministic splitmix64 stream for the generators.
#[derive(Debug, Clone)]
struct Rng64 {
    state: u64,
}

impl Rng64 {
    fn new(seed: u64) -> Self {
        Rng64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A random-but-valid controller configuration derived from a seed.
///
/// Starts from the paper's DDR4-2400 configuration and jitters the timing
/// set, rank count and write-queue sizing within JEDEC-plausible ranges;
/// every constraint `TimingParams::validate` enforces holds by
/// construction (and is debug-asserted).
pub fn random_config(seed: u64) -> CtrlConfig {
    let mut rng = Rng64::new(seed);
    let mut cfg = CtrlConfig::paper_default();
    {
        let t = &mut cfg.device.timing;
        t.cl = 14 + rng.below(6);
        t.cwl = 10 + rng.below(4);
        t.t_rcd = 12 + rng.below(10);
        t.t_rp = 12 + rng.below(10);
        t.t_ras = 30 + rng.below(12);
        t.t_rc = t.t_ras + t.t_rp + rng.below(4);
        t.t_ccd_s = 4;
        t.t_ccd_l = 5 + rng.below(3);
        t.t_rrd_s = 3 + rng.below(3);
        t.t_rrd_l = t.t_rrd_s + rng.below(3);
        t.t_faw = 4 * t.t_rrd_s + rng.below(10);
        t.t_rtp = 7 + rng.below(4);
        t.t_wr = 14 + rng.below(8);
        t.t_wtr_s = 2 + rng.below(3);
        t.t_wtr_l = t.t_wtr_s + rng.below(6);
        t.rtw_gap = rng.below(4);
        t.t_rfc = 280 + rng.below(200);
    }
    cfg.device.geometry.ranks = if rng.below(2) == 0 { 1 } else { 2 };
    cfg = cfg.with_write_queue([16usize, 32, 64][rng.below(3) as usize]);
    debug_assert!(cfg.device.validate().is_ok(), "generator broke validity");
    cfg
}

/// Proptest strategy over [`random_config`] seeds.
pub fn arb_ctrl_config() -> impl Strategy<Value = CtrlConfig> {
    any::<u64>().prop_map(random_config)
}

/// Adversarial traffic shapes, each built to stress one protocol corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosPattern {
    /// Sparse row-miss traffic clustered just before each refresh is due,
    /// forcing refresh drains to interleave with open rows.
    RefreshStorm,
    /// Alternating write floods (above the drain high-watermark) and read
    /// bursts, thrashing write-drain entry/exit and turnarounds.
    WriteBurstThrash,
    /// Every request to one bank with thrashing rows: a PRE/ACT conflict
    /// storm exercising tRP/tRAS/tRC back-to-back.
    SingleBankHammer,
    /// Row misses round-robined across many banks at maximum rate,
    /// pressuring tRRD and the four-activate window.
    FawPressure,
}

impl ChaosPattern {
    /// All patterns, for exhaustive sweeps.
    pub const ALL: [ChaosPattern; 4] = [
        ChaosPattern::RefreshStorm,
        ChaosPattern::WriteBurstThrash,
        ChaosPattern::SingleBankHammer,
        ChaosPattern::FawPressure,
    ];

    /// Generates `n` requests of this shape for the given configuration.
    pub fn generate(self, cfg: &CtrlConfig, seed: u64, n: usize) -> Vec<TrafficReq> {
        let map = AddressMapping::new(cfg.device.geometry, cfg.mapping);
        let g = cfg.device.geometry;
        let mut rng = Rng64::new(seed ^ (self as u64).wrapping_mul(0x9E37_79B9));
        let addr = |bg: u32, bank: u32, row: u32, col: u32| {
            map.encode(DramAddress::new(
                BankAddr::new(0, bg % g.bank_groups, bank % g.banks_per_group),
                row % g.rows,
                col % g.columns,
            ))
        };
        let mut out = Vec::with_capacity(n);
        match self {
            ChaosPattern::RefreshStorm => {
                let refi = cfg.device.timing.t_refi;
                let mut k = 1u64;
                while out.len() < n {
                    // A clump of misses landing just before REF #k is due.
                    let base = (k * refi).saturating_sub(60);
                    for j in 0..8 {
                        if out.len() >= n {
                            break;
                        }
                        out.push(TrafficReq {
                            at: base + j * 5,
                            write: rng.below(4) == 0,
                            addr: addr(
                                j as u32,
                                rng.below(4) as u32,
                                rng.below(u64::from(g.rows)) as u32,
                                rng.below(u64::from(g.columns)) as u32,
                            ),
                        });
                    }
                    k += 1;
                }
            }
            ChaosPattern::WriteBurstThrash => {
                let mut at = 0u64;
                let mut i = 0u32;
                while out.len() < n {
                    let flood = cfg.wq_high + 4;
                    for _ in 0..flood {
                        if out.len() >= n {
                            break;
                        }
                        out.push(TrafficReq {
                            at,
                            write: true,
                            addr: addr(i, i / 4, rng.below(64) as u32, i % 64),
                        });
                        at += 1;
                        i += 1;
                    }
                    for _ in 0..16 {
                        if out.len() >= n {
                            break;
                        }
                        out.push(TrafficReq {
                            at,
                            write: false,
                            addr: addr(i, i / 4, rng.below(64) as u32, i % 64),
                        });
                        at += 2;
                        i += 1;
                    }
                }
            }
            ChaosPattern::SingleBankHammer => {
                let mut at = 0u64;
                for _ in 0..n {
                    out.push(TrafficReq {
                        at,
                        write: rng.below(5) == 0,
                        addr: addr(0, 0, rng.below(4) as u32, rng.below(8) as u32),
                    });
                    at += 2 + rng.below(6);
                }
            }
            ChaosPattern::FawPressure => {
                let mut at = 0u64;
                let mut row = 0u32;
                for i in 0..n as u32 {
                    if i % (g.bank_groups * g.banks_per_group) == 0 {
                        row = row.wrapping_add(1);
                    }
                    out.push(TrafficReq {
                        at,
                        write: false,
                        addr: addr(i % g.bank_groups, i / g.bank_groups, row, 0),
                    });
                    at += 1 + rng.below(2);
                }
            }
        }
        out
    }
}

/// Proptest strategy over the adversarial patterns.
pub fn arb_pattern() -> impl Strategy<Value = ChaosPattern> {
    (0usize..ChaosPattern::ALL.len()).prop_map(|i| ChaosPattern::ALL[i])
}

/// What a chaos run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveOutcome {
    /// The auditor's findings.
    pub audit: AuditReport,
    /// Reads fed to the controller.
    pub reads: u64,
    /// Writes fed to the controller.
    pub writes: u64,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Whether all traffic was fed and drained within the cycle budget.
    pub drained: bool,
}

/// Runs a controller over a traffic script with the shadow auditor armed.
///
/// `fault` perturbs the controller's internal bookkeeping
/// ([`SeededFault::None`] for a clean run); the auditor always checks
/// against the *true* configured timing. The drive never panics on a
/// violation — findings come back in the outcome.
pub fn drive(
    cfg: CtrlConfig,
    fault: SeededFault,
    traffic: &[TrafficReq],
    max_cycles: Cycle,
) -> DriveOutcome {
    let (probe, handle) = audit_channel(&cfg.device);
    let mut ctrl = MemoryController::new(cfg);
    ctrl.inject_fault(fault);
    ctrl.attach_probe(Box::new(probe));
    let mut view = CycleView::idle(ctrl.total_banks());
    let (mut reads, mut writes) = (0u64, 0u64);
    let mut next = 0usize;
    let mut now: Cycle = 0;
    let mut completions = Vec::new();
    while (next < traffic.len() || !ctrl.is_idle()) && now < max_cycles {
        while next < traffic.len() && traffic[next].at <= now {
            let r = traffic[next];
            if r.write {
                if !ctrl.can_accept_write() {
                    break;
                }
                ctrl.enqueue_write(r.addr);
                writes += 1;
            } else {
                if !ctrl.can_accept_read() {
                    break;
                }
                ctrl.enqueue_read(r.addr, next as u64);
                reads += 1;
            }
            next += 1;
        }
        ctrl.tick(now, &mut view);
        ctrl.take_completions_into(&mut completions);
        for c in completions.drain(..) {
            handle.check_completion(&c);
        }
        now += 1;
    }
    let drained = next == traffic.len() && ctrl.is_idle();
    DriveOutcome {
        audit: handle.report(),
        reads,
        writes,
        cycles: now,
        drained,
    }
}

/// Like [`drive`], but simulates a crash: at cycle `kill_at` the live
/// controller, probe and auditor are torn down after capturing their
/// snapshot state, rebuilt fresh from the config alone, restored, and
/// the run continues to completion.
///
/// The outcome is bit-identical to an uninterrupted [`drive`] — the
/// kill-and-resume matrix in the tests proves it across every
/// [`ChaosPattern`] at boundary and mid-stream kill points, with and
/// without an injected fault (the device snapshot carries the corrupted
/// timing enforcement, so a restored faulty controller stays faulty and
/// the auditor keeps catching it).
pub fn drive_interrupted(
    cfg: CtrlConfig,
    fault: SeededFault,
    traffic: &[TrafficReq],
    max_cycles: Cycle,
    kill_at: Cycle,
) -> DriveOutcome {
    let (probe, handle) = audit_channel(&cfg.device);
    let mut handle = handle;
    let mut ctrl = MemoryController::new(cfg.clone());
    ctrl.inject_fault(fault);
    ctrl.attach_probe(Box::new(probe));
    let mut view = CycleView::idle(ctrl.total_banks());
    let (mut reads, mut writes) = (0u64, 0u64);
    let mut next = 0usize;
    let mut now: Cycle = 0;
    let mut killed = false;
    let mut completions = Vec::new();
    while (next < traffic.len() || !ctrl.is_idle()) && now < max_cycles {
        if now == kill_at && !killed {
            killed = true;
            let ctrl_state = ctrl.snapshot_state();
            let audit_state = handle.snapshot_state();
            // "Crash": drop everything live, keep only the snapshots
            // (in a real resume they would round-trip through JSON; the
            // simulator-level tests cover that path).
            drop(ctrl);
            // "Resume": rebuild from the config alone and restore. The
            // device snapshot carries the injected fault's corrupted
            // enforcement, so no re-injection happens here.
            let (probe2, handle2) = audit_channel(&cfg.device);
            let mut rebuilt = MemoryController::new(cfg.clone());
            rebuilt.attach_probe(Box::new(probe2));
            rebuilt.restore_state(&ctrl_state);
            handle2.restore_state(&audit_state);
            view = CycleView::idle(rebuilt.total_banks());
            ctrl = rebuilt;
            handle = handle2;
        }
        while next < traffic.len() && traffic[next].at <= now {
            let r = traffic[next];
            if r.write {
                if !ctrl.can_accept_write() {
                    break;
                }
                ctrl.enqueue_write(r.addr);
                writes += 1;
            } else {
                if !ctrl.can_accept_read() {
                    break;
                }
                ctrl.enqueue_read(r.addr, next as u64);
                reads += 1;
            }
            next += 1;
        }
        ctrl.tick(now, &mut view);
        ctrl.take_completions_into(&mut completions);
        for c in completions.drain(..) {
            handle.check_completion(&c);
        }
        now += 1;
    }
    let drained = next == traffic.len() && ctrl.is_idle();
    DriveOutcome {
        audit: handle.report(),
        reads,
        writes,
        cycles: now,
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_configs_are_always_valid() {
        for seed in 0..200 {
            let cfg = random_config(seed);
            cfg.device.validate().expect("generated config invalid");
            assert!(cfg.wq_high < cfg.write_queue_cap);
            assert!(cfg.wq_low < cfg.wq_high);
        }
    }

    #[test]
    fn generators_emit_sorted_nonempty_traffic() {
        let cfg = CtrlConfig::paper_default();
        for p in ChaosPattern::ALL {
            let t = p.generate(&cfg, 7, 100);
            assert_eq!(t.len(), 100, "{p:?}");
            assert!(t.windows(2).all(|w| w[0].at <= w[1].at), "{p:?} unsorted");
        }
    }

    #[test]
    fn clean_drive_on_paper_config_has_no_violations() {
        let cfg = CtrlConfig::paper_default();
        let traffic = ChaosPattern::SingleBankHammer.generate(&cfg, 3, 200);
        let out = drive(cfg, SeededFault::None, &traffic, 2_000_000);
        assert!(out.drained, "hammer run did not drain");
        assert!(
            out.audit.is_clean(),
            "clean run flagged: {:?}",
            out.audit.first_violation()
        );
        assert!(out.audit.commands_audited > 0);
        assert_eq!(out.reads + out.writes, 200);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_across_patterns() {
        // The kill-and-resume matrix: every chaos pattern, random valid
        // configs, kills early / mid-stream / late (including cycle 1,
        // mid-refresh-storm, and deep into the drain tail). A resumed
        // run must be indistinguishable from an uninterrupted one —
        // same traffic accepted, same cycle count, same (clean) audit.
        for pattern in ChaosPattern::ALL {
            for seed in [3u64, 11] {
                let cfg = random_config(seed);
                let traffic = pattern.generate(&cfg, seed, 120);
                let base = drive(cfg.clone(), SeededFault::None, &traffic, 2_000_000);
                assert!(base.audit.is_clean(), "{pattern:?} base run not clean");
                for frac in [0u64, 3, 7, 9] {
                    let kill_at = (base.cycles * frac / 10).max(1);
                    let resumed = drive_interrupted(
                        cfg.clone(),
                        SeededFault::None,
                        &traffic,
                        2_000_000,
                        kill_at,
                    );
                    assert_eq!(
                        resumed, base,
                        "{pattern:?} seed {seed} killed at {kill_at} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_state_survives_kill_and_resume() {
        // An injected fault's corrupted timing enforcement is part of the
        // device snapshot: the rebuilt controller must stay faulty and
        // the restored auditor must keep (and keep growing) its findings
        // exactly as the uninterrupted run does.
        let cfg = CtrlConfig::paper_default();
        let fault = SeededFault::TrcdOneEarly;
        for pattern in [ChaosPattern::SingleBankHammer, ChaosPattern::RefreshStorm] {
            let traffic = pattern.generate(&cfg, 5, 150);
            let base = drive(cfg.clone(), fault, &traffic, 2_000_000);
            assert!(
                base.audit.violations_total > 0,
                "{fault:?} under {pattern:?} produced no violations to compare"
            );
            for frac in [2u64, 6] {
                let kill_at = (base.cycles * frac / 10).max(1);
                let resumed = drive_interrupted(cfg.clone(), fault, &traffic, 2_000_000, kill_at);
                assert_eq!(
                    resumed, base,
                    "{fault:?} under {pattern:?} killed at {kill_at} diverged"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Randomized kill-and-resume: arbitrary valid config, pattern
        /// and kill fraction — the resumed outcome always matches.
        #[test]
        fn prop_kill_and_resume_matches(
            seed in 0u64..40,
            pattern in arb_pattern(),
            kill_permille in 1u64..999,
        ) {
            let cfg = random_config(seed);
            let traffic = pattern.generate(&cfg, seed, 80);
            let base = drive(cfg.clone(), SeededFault::None, &traffic, 1_000_000);
            let kill_at = (base.cycles * kill_permille / 1000).max(1);
            let resumed = drive_interrupted(
                cfg,
                SeededFault::None,
                &traffic,
                1_000_000,
                kill_at,
            );
            prop_assert_eq!(resumed, base);
        }
    }
}
