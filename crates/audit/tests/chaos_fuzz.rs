//! Chaos/fuzz harness tests.
//!
//! Two tiers, mirroring the CI `audit` job:
//!
//! * **Gating** — the paper's configuration must audit clean under every
//!   adversarial traffic shape (proptest-driven seeds).
//! * **Recording** — random-but-valid configurations run under chaos with
//!   the auditor armed; findings are written to
//!   `target/audit/chaos-findings.json` as an artifact for inspection but
//!   do not fail the build (an exotic configuration diverging is a lead,
//!   not a regression).
//!
//! All seeds are fixed/derived deterministically, so every case
//! reproduces.

use proptest::prelude::*;
use serde::Serialize;

use dramstack_audit::chaos::{arb_ctrl_config, arb_pattern, random_config};
use dramstack_audit::{drive, AuditReport, ChaosPattern, SeededFault};
use dramstack_memctrl::CtrlConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn paper_config_audits_clean_under_adversarial_traffic(
        seed in any::<u64>(),
        pattern in arb_pattern(),
    ) {
        let cfg = CtrlConfig::paper_default();
        let traffic = pattern.generate(&cfg, seed, 160);
        let out = drive(cfg, SeededFault::None, &traffic, 3_000_000);
        prop_assert!(out.audit.commands_audited > 0);
        prop_assert!(
            out.audit.is_clean(),
            "{pattern:?} seed {seed}: {:?}",
            out.audit.first_violation()
        );
        prop_assert!(out.drained, "{pattern:?} seed {seed} did not drain");
    }

    #[test]
    fn random_configs_drive_to_completion_with_auditor_armed(
        cfg in arb_ctrl_config(),
        pattern in arb_pattern(),
        seed in any::<u64>(),
    ) {
        let traffic = pattern.generate(&cfg, seed, 120);
        let out = drive(cfg, SeededFault::None, &traffic, 3_000_000);
        // Liveness and armed-ness gate; cleanliness of exotic configs is
        // recorded by the artifact test below, not asserted here.
        prop_assert!(out.audit.armed);
        prop_assert!(out.audit.commands_audited > 0);
        prop_assert!(out.drained, "{pattern:?} did not drain");
        // The report always serializes (CI artifact path).
        prop_assert!(serde_json::to_string(&out.audit).is_ok());
    }
}

#[derive(Debug, Serialize)]
struct Finding {
    config_seed: u64,
    pattern: String,
    traffic_seed: u64,
    audit: AuditReport,
}

/// Bounded, fixed-seed sweep of random configurations under every chaos
/// pattern. Violations (none expected, but the point of fuzzing is the
/// unexpected) land in `target/audit/chaos-findings.json`.
#[test]
fn random_config_sweep_records_findings_as_artifact() {
    let mut findings: Vec<Finding> = Vec::new();
    let mut runs = 0u32;
    for config_seed in 0..10u64 {
        let cfg = random_config(config_seed);
        for pattern in ChaosPattern::ALL {
            let traffic_seed = config_seed ^ 0xC0FF_EE00;
            let traffic = pattern.generate(&cfg, traffic_seed, 120);
            let out = drive(cfg.clone(), SeededFault::None, &traffic, 3_000_000);
            runs += 1;
            assert!(out.audit.commands_audited > 0, "{pattern:?}/{config_seed}");
            if !out.audit.is_clean() {
                findings.push(Finding {
                    config_seed,
                    pattern: format!("{pattern:?}"),
                    traffic_seed,
                    audit: out.audit,
                });
            }
        }
    }
    assert_eq!(runs, 40);
    let dir = std::env::var("AUDIT_ARTIFACT_DIR").unwrap_or_else(|_| "../../target/audit".into());
    if !findings.is_empty() {
        std::fs::create_dir_all(&dir).expect("create artifact dir");
        let path = format!("{dir}/chaos-findings.json");
        std::fs::write(&path, serde_json::to_string_pretty(&findings).unwrap())
            .expect("write artifact");
        eprintln!(
            "chaos sweep: {} finding(s) recorded to {path} (not gating)",
            findings.len()
        );
    }
}

/// Seeded faults stay detectable under full-blown adversarial traffic,
/// not just the targeted recipes in `fault_matrix.rs`.
#[test]
fn faults_surface_under_matching_chaos_pattern() {
    let cfg = CtrlConfig::paper_default();
    // Each pattern reliably exercises the path these faults corrupt.
    let pairs = [
        (SeededFault::TrcdOneEarly, ChaosPattern::SingleBankHammer),
        (SeededFault::TrpOneEarly, ChaosPattern::SingleBankHammer),
        (SeededFault::RrdDropped, ChaosPattern::FawPressure),
        (SeededFault::FawDropped, ChaosPattern::FawPressure),
        (SeededFault::WtrDropped, ChaosPattern::WriteBurstThrash),
        (SeededFault::TrfcHalved, ChaosPattern::RefreshStorm),
    ];
    for (fault, pattern) in pairs {
        let traffic = pattern.generate(&cfg, 42, 200);
        let out = drive(cfg.clone(), fault, &traffic, 3_000_000);
        assert!(
            out.audit.violations_total > 0,
            "{fault:?} undetected under {pattern:?}"
        );
    }
}
