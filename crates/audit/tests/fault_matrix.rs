//! The seeded-fault matrix: every fault class injectable into the
//! controller's bookkeeping must be caught by the shadow auditor, with a
//! diagnostic naming the violated rule — and the same traffic on an
//! unfaulted controller must audit clean (so detections are not noise).

use dramstack_audit::{drive, AuditRule, SeededFault, TrafficReq};
use dramstack_dram::{BankAddr, DramAddress};
use dramstack_memctrl::{AddressMapping, CtrlConfig};

fn addr(cfg: &CtrlConfig, bg: u32, bank: u32, row: u32, col: u32) -> u64 {
    AddressMapping::new(cfg.device.geometry, cfg.mapping).encode(DramAddress::new(
        BankAddr::new(0, bg, bank),
        row,
        col,
    ))
}

fn read(at: u64, addr: u64) -> TrafficReq {
    TrafficReq {
        at,
        write: false,
        addr,
    }
}

fn write(at: u64, addr: u64) -> TrafficReq {
    TrafficReq {
        at,
        write: true,
        addr,
    }
}

/// Traffic crafted to exercise the protocol path each fault corrupts.
fn traffic_for(fault: SeededFault, cfg: &CtrlConfig) -> Vec<TrafficReq> {
    match fault {
        // A single cold read: ACT then CAS, one cycle early under the
        // corrupted tRCD.
        SeededFault::TrcdOneEarly => vec![read(0, addr(cfg, 0, 0, 1, 0))],
        // A row conflict on one bank: PRE then a too-early ACT (tRP/tRC).
        SeededFault::TrpOneEarly | SeededFault::TrasShort => vec![
            read(0, addr(cfg, 0, 0, 1, 0)),
            read(0, addr(cfg, 0, 0, 2, 0)),
        ],
        // Back-to-back row hits on one bank: CAS spacing collapses to
        // tCCD_S inside a bank group.
        SeededFault::CcdLongAsShort => (0..6).map(|i| read(0, addr(cfg, 0, 0, 1, i))).collect(),
        // Cold reads across bank groups: ACT-to-ACT spacing collapses.
        SeededFault::RrdDropped => (0..4).map(|i| read(0, addr(cfg, i, 0, 1, 0))).collect(),
        // Cold reads to five banks: the fifth ACT lands inside the true
        // four-activate window.
        SeededFault::FawDropped => (0..6)
            .map(|i| read(0, addr(cfg, i % 4, i / 4, 1, 0)))
            .collect(),
        // Fill the write queue to force a drain, with reads to the same
        // open row queued behind it: the post-drain read CAS ignores the
        // write-to-read turnaround.
        SeededFault::WtrDropped => {
            let mut t: Vec<TrafficReq> = (0..32).map(|i| write(0, addr(cfg, 0, 0, 1, i))).collect();
            t.extend((0..4).map(|i| read(0, addr(cfg, 0, 0, 1, 40 + i))));
            t
        }
        // A long read stream with a write flood arriving mid-stream: the
        // first drained write burst starts flush against the last read
        // burst, missing the bus turnaround bubble.
        SeededFault::RtwGapDropped => {
            let mut t: Vec<TrafficReq> = (0..40)
                .map(|i| read(0, addr(cfg, i % 4, 0, 1, i / 4)))
                .collect();
            t.extend((0..30).map(|i| write(20, addr(cfg, i % 4, 1, 1, i / 4))));
            t.sort_by_key(|r| r.at);
            t
        }
        // Steady traffic past several refresh intervals: commands resume
        // inside the true tRFC window after a halved refresh.
        SeededFault::TrfcHalved => (0..1500u64)
            .map(|i| read(i * 20, addr(cfg, (i % 4) as u32, 0, (i % 64) as u32, 0)))
            .collect(),
        SeededFault::None => Vec::new(),
    }
}

/// The rules a detection may legitimately report for each class (several
/// constraints can be violated at once; the auditor reports the binding
/// one).
fn expected_rules(fault: SeededFault) -> &'static [AuditRule] {
    match fault {
        SeededFault::TrcdOneEarly => &[AuditRule::TRcd],
        SeededFault::TrpOneEarly => &[AuditRule::TRp, AuditRule::TRc],
        SeededFault::TrasShort => &[AuditRule::TRas],
        SeededFault::CcdLongAsShort => &[AuditRule::TCcdL],
        SeededFault::RrdDropped => &[AuditRule::TRrdS, AuditRule::TRrdL],
        SeededFault::FawDropped => &[AuditRule::TFaw],
        SeededFault::WtrDropped => &[AuditRule::TWtrS, AuditRule::TWtrL],
        SeededFault::RtwGapDropped => &[AuditRule::ReadToWrite],
        SeededFault::TrfcHalved => &[AuditRule::TRfc],
        SeededFault::None => &[],
    }
}

#[test]
fn every_seeded_fault_class_is_detected() {
    let cfg = CtrlConfig::paper_default();
    for fault in SeededFault::ALL {
        let traffic = traffic_for(fault, &cfg);
        let out = drive(cfg.clone(), fault, &traffic, 200_000);
        assert!(
            out.audit.violations_total > 0,
            "{fault:?} was not detected (commands audited: {})",
            out.audit.commands_audited
        );
        let first = out.audit.first_violation().unwrap();
        assert!(
            expected_rules(fault).contains(&first.rule),
            "{fault:?}: binding rule {:?} not in expected {:?}\n{first}",
            first.rule,
            expected_rules(fault)
        );
        // The diagnostic is actionable: it names the command, the bank,
        // and a concrete earliest-legal cycle after the observed one.
        assert!(first.earliest_legal > first.at, "{fault:?}: {first}");
        assert!(!first.detail.is_empty(), "{fault:?}");
    }
}

#[test]
fn the_same_traffic_audits_clean_without_the_fault() {
    let cfg = CtrlConfig::paper_default();
    for fault in SeededFault::ALL {
        let traffic = traffic_for(fault, &cfg);
        let out = drive(cfg.clone(), SeededFault::None, &traffic, 200_000);
        assert!(
            out.audit.is_clean(),
            "clean controller flagged on {fault:?} traffic: {:?}",
            out.audit.first_violation()
        );
        assert!(out.audit.commands_audited > 0, "{fault:?}");
    }
}

#[test]
fn detections_carry_reproduction_context() {
    let cfg = CtrlConfig::paper_default();
    let traffic = traffic_for(SeededFault::TrcdOneEarly, &cfg);
    let out = drive(cfg, SeededFault::TrcdOneEarly, &traffic, 10_000);
    let v = out.audit.first_violation().expect("detected").clone();
    // One cycle early, exactly as seeded.
    assert_eq!(v.earliest_legal - v.at, 1, "{v}");
    let text = v.to_string();
    assert!(text.contains("tRCD"), "{text}");
    // Round-trips through serde for artifact files.
    let json = serde_json::to_string(&out.audit).unwrap();
    assert!(json.contains("TRcd"), "{json}");
}
