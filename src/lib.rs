//! # dramstack — DRAM Bandwidth and Latency Stacks
//!
//! A from-scratch Rust reproduction of *"DRAM Bandwidth and Latency Stacks:
//! Visualizing DRAM Bottlenecks"* (Eyerman, Heirman, Hur — ISPASS 2022):
//! a cycle-level DDR4 model, a memory controller, a closed-loop multicore
//! simulator, and — the paper's contribution — hierarchical **bandwidth
//! stacks** and per-read **latency stacks** that explain where peak DRAM
//! bandwidth is lost and where read latency comes from.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`dram`] — DDR4 device timing model.
//! * [`memctrl`] — memory controller (FR-FCFS, write bursts, page policies,
//!   address mapping).
//! * [`obs`] — observability: controller probes, metrics registry,
//!   Chrome-trace export and simulator self-profiling.
//! * [`audit`] — shadow JEDEC protocol auditor, stack-conservation
//!   invariants and seeded-fault injection (armed by default in debug
//!   and test builds).
//! * [`stacks`] — bandwidth/latency stack accounting, through-time
//!   sampling and bandwidth extrapolation (the paper's contribution).
//! * [`cpu`] — out-of-order-proxy cores, caches, prefetcher, cycle stacks.
//! * [`workloads`] — synthetic streams and GAP-style graph kernels.
//! * [`sim`] — the full-system simulator and paper experiment configs.
//! * [`serve`] — the resilient simulation service (`dramstack serve`):
//!   admission control, backpressure, graceful drain.
//! * [`viz`] — ASCII/SVG/CSV renderings of stacks.
//!
//! plus one module of its own: [`live`], which bridges the simulator's
//! streaming telemetry to the terminal stack dashboard.
//!
//! # Quickstart
//!
//! ```
//! use dramstack::sim::{Simulator, SystemConfig};
//! use dramstack::workloads::SyntheticPattern;
//!
//! // One core reading sequentially, the paper's Figure 2 leftmost bar.
//! let cfg = SystemConfig::paper_default(1);
//! let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
//! let report = sim.run_for_us(200.0);
//! let bw = report.bandwidth_stack;
//! assert!(bw.achieved_gbps() > 1.0);
//! assert!(bw.achieved_gbps() < bw.peak_gbps());
//! ```

pub mod live;

pub use dramstack_audit as audit;
pub use dramstack_core as stacks;
pub use dramstack_cpu as cpu;
pub use dramstack_dram as dram;
pub use dramstack_memctrl as memctrl;
pub use dramstack_obs as obs;
pub use dramstack_serve as serve;
pub use dramstack_sim as sim;
pub use dramstack_viz as viz;
pub use dramstack_workloads as workloads;
