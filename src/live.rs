//! Bridges the simulator's streaming telemetry to the terminal
//! dashboard in `dramstack-viz`.
//!
//! The viz crate renders frames from plain stack types and strings; the
//! sim crate publishes windows through its [`TelemetrySink`] trait. This
//! module (living in the facade crate, which sees both) adapts one to
//! the other and adds the TTY/environment policy: ANSI in-place redraw
//! on a terminal, periodic plain-text blocks otherwise, with the
//! `DRAMSTACK_LIVE` environment variable forcing the mode.

use std::io::{IsTerminal, Write};

use dramstack_core::TimeSample;
use dramstack_obs::{BottleneckClass, WindowObservation};
use dramstack_sim::TelemetrySink;
use dramstack_viz::live::{LiveDashboard, LiveFrame};

/// How the live dashboard draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveMode {
    /// In-place ANSI redraw (interactive terminals).
    Ansi,
    /// A plain text block every few windows (pipes, logs, CI).
    Plain,
}

/// Resolves the drawing mode for stderr: `DRAMSTACK_LIVE=ansi|plain`
/// forces it, otherwise ANSI when stderr is a terminal and plain when
/// it is redirected.
pub fn auto_mode() -> LiveMode {
    match std::env::var("DRAMSTACK_LIVE").as_deref() {
        Ok("ansi") => LiveMode::Ansi,
        Ok("plain") => LiveMode::Plain,
        _ => {
            if std::io::stderr().is_terminal() {
                LiveMode::Ansi
            } else {
                LiveMode::Plain
            }
        }
    }
}

/// Whether the environment asks for the live dashboard even without
/// `--live` (any non-empty `DRAMSTACK_LIVE` value except `0`/`off`).
pub fn env_requests_live() -> bool {
    match std::env::var("DRAMSTACK_LIVE").as_deref() {
        Ok("") | Ok("0") | Ok("off") | Err(_) => false,
        Ok(_) => true,
    }
}

/// A [`TelemetrySink`] that renders each published window on the live
/// dashboard and writes the frames to stderr (stdout stays clean for
/// reports and charts).
pub struct LiveSink {
    dash: LiveDashboard,
    /// Render every `every`-th window (1 in ANSI mode; sparser in plain
    /// mode so logs stay readable).
    every: u64,
    out: Box<dyn Write + Send>,
}

impl std::fmt::Debug for LiveSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSink")
            .field("dash", &self.dash)
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

impl LiveSink {
    /// A sink drawing to stderr in the given mode.
    pub fn new(mode: LiveMode) -> Self {
        Self::with_writer(mode, Box::new(std::io::stderr()))
    }

    /// A sink drawing to an arbitrary writer (tests, log files).
    pub fn with_writer(mode: LiveMode, out: Box<dyn Write + Send>) -> Self {
        let ansi = mode == LiveMode::Ansi;
        LiveSink {
            dash: LiveDashboard::new(ansi),
            every: if ansi { 1 } else { 16 },
            out,
        }
    }
}

impl TelemetrySink for LiveSink {
    fn window(
        &mut self,
        index: u64,
        sample: &TimeSample,
        _obs: &WindowObservation,
        current: Option<BottleneckClass>,
    ) {
        if !index.is_multiple_of(self.every) {
            return;
        }
        let frame = LiveFrame {
            window: index,
            start_cycle: sample.start_cycle,
            bandwidth: &sample.bandwidth,
            latency: &sample.latency,
            bottleneck: current.map(BottleneckClass::name),
            message: None,
        };
        let text = self.dash.render(&frame);
        let _ = self.out.write_all(text.as_bytes());
        let _ = self.out.flush();
    }

    fn finish(&mut self) {
        let _ = self.out.write_all(self.dash.render_final().as_bytes());
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample() -> TimeSample {
        use dramstack_core::StackSampler;
        use dramstack_dram::{BurstKind, CycleView};
        let mut s = StackSampler::new(16, 19.2, 0.8333, 100);
        let mut busy = CycleView::idle(16);
        busy.bus = Some(BurstKind::Read);
        for _ in 0..100 {
            s.account(&busy);
        }
        s.finish().remove(0)
    }

    #[test]
    fn plain_sink_renders_sparsely_without_escapes() {
        let buf = Shared::default();
        let mut sink = LiveSink::with_writer(LiveMode::Plain, Box::new(buf.clone()));
        let s = sample();
        let obs = s.observation();
        for i in 0..33 {
            sink.window(i, &s, &obs, None);
        }
        sink.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(!text.contains('\x1b'));
        // Windows 0, 16 and 32 drew; the rest were skipped.
        assert_eq!(text.matches("dramstack live — window").count(), 3);
        assert!(text.contains("dramstack live — done"));
    }

    #[test]
    fn ansi_sink_renders_every_window_in_place() {
        let buf = Shared::default();
        let mut sink = LiveSink::with_writer(LiveMode::Ansi, Box::new(buf.clone()));
        let s = sample();
        let obs = s.observation();
        for i in 0..3 {
            sink.window(i, &s, &obs, Some(BottleneckClass::Saturated));
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.matches("dramstack live — window").count(), 3);
        assert!(text.contains("\x1b["));
        assert!(text.contains("bottleneck: saturated"));
    }
}
