//! `dramstack-cli` — run stack experiments from the command line.
//!
//! ```text
//! dramstack-cli synth --pattern seq --cores 4 --stores 0.2 --us 100
//! dramstack-cli synth --cores 4 --live --telemetry run.jsonl --prom run.prom
//! dramstack-cli gap --kernel bfs --cores 8 --scale 12
//! dramstack-cli trace --input cmds.trace --cycles 100000
//! dramstack-cli extrapolate --pattern rand --to 8
//! dramstack-cli diff --before a.json --after b.json
//! ```

use std::process::ExitCode;

use dramstack::live::{auto_mode, env_requests_live, LiveSink};
use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::{
    run_gap, run_synthetic, sweep_synthetic_supervised, SweepInjection,
};
use dramstack::sim::parallel::SupervisorConfig;
use dramstack::sim::{
    diff_reports, job_key, load_report, Campaign, SimReport, Simulator, SnapshotFormat,
    SweepCheckpointing, SystemConfig, Telemetry, TelemetryConfig,
};
use dramstack::stacks::offline::stack_from_trace;
use dramstack::stacks::{predict_bandwidth_naive, predict_bandwidth_stack};
use dramstack::viz::{ascii, csv, svg};
use dramstack::workloads::{GapConfig, GapKernel, Graph, SyntheticPattern};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
enum Cli {
    Synth(SynthArgs),
    Sweep(SweepArgs),
    Gap(GapArgs),
    Trace { input: String, cycles: u64 },
    ReqTrace { input: String },
    Extrapolate { pattern: SynthArgs, to: f64 },
    Diff(DiffArgs),
    Serve(ServeArgs),
    Help,
}

/// Arguments of the `serve` daemon command.
#[derive(Debug, Clone, PartialEq)]
struct ServeArgs {
    addr: String,
    workers: usize,
    queue_cap: usize,
    max_body_kb: usize,
    job_deadline_secs: Option<f64>,
    job_stall_secs: f64,
    drain_grace_secs: f64,
    checkpoint_dir: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            queue_cap: 16,
            max_body_kb: 64,
            job_deadline_secs: Some(300.0),
            job_stall_secs: 10.0,
            drain_grace_secs: 10.0,
            checkpoint_dir: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct DiffArgs {
    before: String,
    after: String,
    /// Significance floor as a fraction of the before-run totals.
    threshold: f64,
}

#[derive(Debug, Clone, PartialEq)]
struct SynthArgs {
    pattern: &'static str,
    cores: usize,
    stores: f64,
    policy: PagePolicy,
    mapping: MappingScheme,
    us: f64,
    csv_out: Option<String>,
    svg_out: Option<String>,
    live: bool,
    telemetry_out: Option<String>,
    prom_out: Option<String>,
    report_out: Option<String>,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    snapshot_format: SnapshotFormat,
    snapshot_delta: bool,
    resume: bool,
}

impl Default for SynthArgs {
    fn default() -> Self {
        SynthArgs {
            pattern: "seq",
            cores: 1,
            stores: 0.0,
            policy: PagePolicy::Open,
            mapping: MappingScheme::RowBankColumn,
            us: 100.0,
            csv_out: None,
            svg_out: None,
            live: false,
            telemetry_out: None,
            prom_out: None,
            report_out: None,
            checkpoint_dir: None,
            // 1 ms of simulated time at the paper's DDR4-2400 clock.
            checkpoint_every: 1_200_000,
            snapshot_format: SnapshotFormat::Binary,
            snapshot_delta: true,
            resume: false,
        }
    }
}

/// Arguments of the supervised (optionally resumable) `sweep` command.
#[derive(Debug, Clone, PartialEq)]
struct SweepArgs {
    cores: Vec<usize>,
    policies: Vec<PagePolicy>,
    mappings: Vec<MappingScheme>,
    stores: f64,
    us: f64,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    snapshot_format: SnapshotFormat,
    snapshot_delta: bool,
    resume: bool,
    deadline_secs: Option<f64>,
    retries: u32,
    /// Chaos knobs for the CI crash-safety harness: make one grid point
    /// panic / hang to prove salvage and watchdog behavior end to end.
    inject_panic: Option<usize>,
    inject_hang: Option<usize>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            cores: vec![1, 2, 4],
            policies: vec![PagePolicy::Open],
            mappings: vec![MappingScheme::RowBankColumn],
            stores: 0.0,
            us: 50.0,
            checkpoint_dir: None,
            checkpoint_every: 1_200_000,
            snapshot_format: SnapshotFormat::Binary,
            snapshot_delta: true,
            resume: false,
            deadline_secs: None,
            retries: 1,
            inject_panic: None,
            inject_hang: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct GapArgs {
    kernel: GapKernel,
    cores: usize,
    scale: u32,
    degree: u32,
    policy: PagePolicy,
    mapping: MappingScheme,
}

impl Default for GapArgs {
    fn default() -> Self {
        GapArgs {
            kernel: GapKernel::Bfs,
            cores: 4,
            scale: 12,
            degree: 12,
            policy: PagePolicy::Closed,
            mapping: MappingScheme::RowBankColumn,
        }
    }
}

const USAGE: &str = "\
dramstack-cli — DRAM bandwidth/latency stacks from the command line

USAGE:
  dramstack-cli synth [--pattern seq|rand] [--cores N] [--stores F]
                      [--policy open|closed] [--mapping def|int] [--us F]
                      [--csv FILE] [--svg FILE] [--live]
                      [--telemetry FILE] [--prom FILE] [--report FILE]
                      [--checkpoint-dir DIR] [--checkpoint-every N]
                      [--snapshot-format binary|json] [--snapshot-delta on|off]
                      [--resume]
  dramstack-cli sweep [--cores N,N,...] [--policies open,closed]
                      [--mappings def,int,xor] [--stores F] [--us F]
                      [--checkpoint-dir DIR] [--checkpoint-every N]
                      [--snapshot-format binary|json] [--snapshot-delta on|off]
                      [--resume] [--deadline-secs F] [--retries N]
  dramstack-cli gap   [--kernel bc|bfs|cc|pr|sssp|tc] [--cores N]
                      [--scale N] [--degree N] [--policy open|closed]
                      [--mapping def|int]
  dramstack-cli trace --input FILE [--cycles N]      # DRAM command trace
  dramstack-cli reqtrace --input FILE                # memory request trace
  dramstack-cli extrapolate [synth options] [--to K]
  dramstack-cli diff  --before REPORT.json --after REPORT.json
                      [--threshold F]                # compare two runs
  dramstack-cli serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
                      [--max-body-kb N] [--job-deadline-secs F|0]
                      [--job-stall-secs F] [--drain-grace-secs F]
                      [--checkpoint-dir DIR]         # simulation service
  dramstack-cli help

Live telemetry (synth): --live draws the terminal stack dashboard on
stderr (ANSI on a TTY, periodic plain text otherwise; DRAMSTACK_LIVE=
ansi|plain|1|off overrides). --telemetry streams one JSON object per
sample window; --prom writes a Prometheus-style text snapshot; --report
dumps the full SimReport JSON for later `diff`.

Crash safety: --checkpoint-dir snapshots the run every --checkpoint-every
DRAM cycles (default 1200000 = 1 ms simulated) and records completions in
DIR/manifest.json; --resume skips jobs the manifest already marks done
and restores interrupted ones from their latest checkpoint, bit-identical
to an uninterrupted run. Checkpoints default to the compact binary delta
chain (base .dsnp plus numbered deltas, written off-thread);
--snapshot-format json keeps full pretty-printed JSON snapshots and
--snapshot-delta off forces every binary checkpoint to be a full
snapshot. SIGTERM and SIGINT are caught while checkpointing is active:
the run flushes one final checkpoint and exits with the conventional
128+signal code (143 for SIGTERM, 130 for ctrl-C), ready for --resume.
`sweep` runs its grid under a supervisor: a panicking job is retried
(--retries, default 1), a job exceeding --deadline-secs is abandoned,
and the sweep always returns every healthy result (exit code 3 flags a
partial sweep).

Serving: `serve` runs a long-lived daemon accepting jobs over HTTP
(POST /jobs with a JSON spec; GET /jobs/<id>, /jobs/<id>/stream,
/healthz, /readyz, /metrics). Admission is a bounded queue
(--queue-cap); overload sheds with 429 + Retry-After. Panicking or hung
jobs are isolated by the worker supervisor. SIGTERM/SIGINT triggers a
graceful drain: stop accepting, finish or cancel in-flight jobs
(checkpointing them when --checkpoint-dir is set), then exit 0.
";

fn parse_policy(v: &str) -> Result<PagePolicy, String> {
    match v {
        "open" => Ok(PagePolicy::Open),
        "closed" => Ok(PagePolicy::Closed),
        other => Err(format!("unknown policy `{other}` (open|closed)")),
    }
}

fn parse_mapping(v: &str) -> Result<MappingScheme, String> {
    match v {
        "def" | "default" => Ok(MappingScheme::RowBankColumn),
        "int" | "interleaved" => Ok(MappingScheme::CacheLineInterleaved),
        "xor" | "permutation" => Ok(MappingScheme::PermutationXor),
        other => Err(format!("unknown mapping `{other}` (def|int|xor)")),
    }
}

fn parse_snapshot_format(v: &str) -> Result<SnapshotFormat, String> {
    SnapshotFormat::parse(v).ok_or_else(|| format!("unknown snapshot format `{v}` (binary|json)"))
}

fn parse_on_off(flag: &str, v: &str) -> Result<bool, String> {
    match v {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(format!("{flag}: expected on|off, got `{other}`")),
    }
}

fn parse_kernel(v: &str) -> Result<GapKernel, String> {
    GapKernel::ALL
        .iter()
        .copied()
        .find(|k| k.name() == v)
        .ok_or_else(|| format!("unknown kernel `{v}` (bc|bfs|cc|pr|sssp|tc)"))
}

fn parse_synth_args(args: &[String]) -> Result<(SynthArgs, Vec<(String, String)>), String> {
    let mut out = SynthArgs::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--pattern" => {
                let v = value("--pattern")?;
                out.pattern = match v.as_str() {
                    "seq" | "sequential" => "seq",
                    "rand" | "random" => "rand",
                    other => return Err(format!("unknown pattern `{other}` (seq|rand)")),
                };
            }
            "--cores" => {
                out.cores = value("--cores")?
                    .parse()
                    .map_err(|e| format!("--cores: {e}"))?
            }
            "--stores" => {
                out.stores = value("--stores")?
                    .parse()
                    .map_err(|e| format!("--stores: {e}"))?
            }
            "--policy" => out.policy = parse_policy(&value("--policy")?)?,
            "--mapping" => out.mapping = parse_mapping(&value("--mapping")?)?,
            "--us" => out.us = value("--us")?.parse().map_err(|e| format!("--us: {e}"))?,
            "--csv" => out.csv_out = Some(value("--csv")?),
            "--svg" => out.svg_out = Some(value("--svg")?),
            "--live" => out.live = true,
            "--telemetry" => out.telemetry_out = Some(value("--telemetry")?),
            "--prom" => out.prom_out = Some(value("--prom")?),
            "--report" => out.report_out = Some(value("--report")?),
            "--checkpoint-dir" => out.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--snapshot-format" => {
                out.snapshot_format = parse_snapshot_format(&value("--snapshot-format")?)?;
            }
            "--snapshot-delta" => {
                out.snapshot_delta = parse_on_off("--snapshot-delta", &value("--snapshot-delta")?)?;
            }
            "--resume" => out.resume = true,
            other => rest.push((other.to_string(), value(other).unwrap_or_default())),
        }
    }
    if !(0.0..=1.0).contains(&out.stores) {
        return Err("--stores must be in [0, 1]".into());
    }
    if out.cores == 0 {
        return Err("--cores must be at least 1".into());
    }
    if out.resume && out.checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    Ok((out, rest))
}

fn parse_list<T, E: std::fmt::Display>(
    flag: &str,
    v: &str,
    parse_one: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, E> = v
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_one(s.trim()))
        .collect();
    let items = items.map_err(|e| format!("{flag}: {e}"))?;
    if items.is_empty() {
        return Err(format!("{flag} needs at least one value"));
    }
    Ok(items)
}

fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, String> {
    let mut out = SweepArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cores" => {
                out.cores = parse_list("--cores", &value("--cores")?, str::parse::<usize>)?;
            }
            "--policies" => {
                out.policies = parse_list("--policies", &value("--policies")?, parse_policy)?;
            }
            "--mappings" => {
                out.mappings = parse_list("--mappings", &value("--mappings")?, parse_mapping)?;
            }
            "--stores" => {
                out.stores = value("--stores")?
                    .parse()
                    .map_err(|e| format!("--stores: {e}"))?;
            }
            "--us" => out.us = value("--us")?.parse().map_err(|e| format!("--us: {e}"))?,
            "--checkpoint-dir" => out.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--snapshot-format" => {
                out.snapshot_format = parse_snapshot_format(&value("--snapshot-format")?)?;
            }
            "--snapshot-delta" => {
                out.snapshot_delta = parse_on_off("--snapshot-delta", &value("--snapshot-delta")?)?;
            }
            "--resume" => out.resume = true,
            "--deadline-secs" => {
                let d: f64 = value("--deadline-secs")?
                    .parse()
                    .map_err(|e| format!("--deadline-secs: {e}"))?;
                if d <= 0.0 {
                    return Err("--deadline-secs must be positive".into());
                }
                out.deadline_secs = Some(d);
            }
            "--retries" => {
                out.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--inject-panic" => {
                out.inject_panic = Some(
                    value("--inject-panic")?
                        .parse()
                        .map_err(|e| format!("--inject-panic: {e}"))?,
                );
            }
            "--inject-hang" => {
                out.inject_hang = Some(
                    value("--inject-hang")?
                        .parse()
                        .map_err(|e| format!("--inject-hang: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}` for sweep")),
        }
    }
    if !(0.0..=1.0).contains(&out.stores) {
        return Err("--stores must be in [0, 1]".into());
    }
    if out.cores.contains(&0) {
        return Err("--cores entries must be at least 1".into());
    }
    if out.resume && out.checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    Ok(out)
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--workers" => {
                out.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                out.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--max-body-kb" => {
                out.max_body_kb = value("--max-body-kb")?
                    .parse()
                    .map_err(|e| format!("--max-body-kb: {e}"))?;
            }
            "--job-deadline-secs" => {
                let d: f64 = value("--job-deadline-secs")?
                    .parse()
                    .map_err(|e| format!("--job-deadline-secs: {e}"))?;
                // 0 disables the per-job deadline entirely.
                out.job_deadline_secs = if d > 0.0 { Some(d) } else { None };
            }
            "--job-stall-secs" => {
                out.job_stall_secs = value("--job-stall-secs")?
                    .parse()
                    .map_err(|e| format!("--job-stall-secs: {e}"))?;
            }
            "--drain-grace-secs" => {
                out.drain_grace_secs = value("--drain-grace-secs")?
                    .parse()
                    .map_err(|e| format!("--drain-grace-secs: {e}"))?;
            }
            "--checkpoint-dir" => out.checkpoint_dir = Some(value("--checkpoint-dir")?),
            other => return Err(format!("unknown flag `{other}` for serve")),
        }
    }
    if out.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if out.queue_cap == 0 {
        return Err("--queue-cap must be at least 1".into());
    }
    if out.max_body_kb == 0 {
        return Err("--max-body-kb must be at least 1".into());
    }
    if out.job_stall_secs <= 0.0 {
        return Err("--job-stall-secs must be positive".into());
    }
    if out.drain_grace_secs < 0.0 {
        return Err("--drain-grace-secs must be non-negative".into());
    }
    Ok(out)
}

/// Parses a full command line (without the program name).
fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let Some(cmd) = args.first() else {
        return Ok(Cli::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Cli::Help),
        "synth" => {
            let (synth, rest) = parse_synth_args(&args[1..])?;
            if let Some((flag, _)) = rest.first() {
                return Err(format!("unknown flag `{flag}` for synth"));
            }
            Ok(Cli::Synth(synth))
        }
        "sweep" => Ok(Cli::Sweep(parse_sweep_args(&args[1..])?)),
        "serve" => Ok(Cli::Serve(parse_serve_args(&args[1..])?)),
        "gap" => {
            let mut out = GapArgs::default();
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--kernel" => out.kernel = parse_kernel(&value("--kernel")?)?,
                    "--cores" => {
                        out.cores = value("--cores")?
                            .parse()
                            .map_err(|e| format!("--cores: {e}"))?;
                    }
                    "--scale" => {
                        out.scale = value("--scale")?
                            .parse()
                            .map_err(|e| format!("--scale: {e}"))?;
                    }
                    "--degree" => {
                        out.degree = value("--degree")?
                            .parse()
                            .map_err(|e| format!("--degree: {e}"))?;
                    }
                    "--policy" => out.policy = parse_policy(&value("--policy")?)?,
                    "--mapping" => out.mapping = parse_mapping(&value("--mapping")?)?,
                    other => return Err(format!("unknown flag `{other}` for gap")),
                }
            }
            if out.scale > 20 {
                return Err("--scale above 20 is impractical for cycle simulation".into());
            }
            Ok(Cli::Gap(out))
        }
        "trace" => {
            let mut input = None;
            let mut cycles = 0u64;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--input" => input = Some(value("--input")?),
                    "--cycles" => {
                        cycles = value("--cycles")?
                            .parse()
                            .map_err(|e| format!("--cycles: {e}"))?;
                    }
                    other => return Err(format!("unknown flag `{other}` for trace")),
                }
            }
            let input = input.ok_or("trace requires --input FILE")?;
            Ok(Cli::Trace { input, cycles })
        }
        "reqtrace" => {
            let mut input = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--input" => input = it.next().cloned(),
                    other => return Err(format!("unknown flag `{other}` for reqtrace")),
                }
            }
            let input = input.ok_or("reqtrace requires --input FILE")?;
            Ok(Cli::ReqTrace { input })
        }
        "extrapolate" => {
            let mut to = 8.0f64;
            let mut filtered = Vec::new();
            let mut i = 1;
            while i < args.len() {
                if args[i] == "--to" {
                    to = args
                        .get(i + 1)
                        .ok_or("--to needs a value")?
                        .parse()
                        .map_err(|e| format!("--to: {e}"))?;
                    i += 2;
                } else {
                    filtered.push(args[i].clone());
                    i += 1;
                }
            }
            let (synth, rest) = parse_synth_args(&filtered)?;
            if let Some((flag, _)) = rest.first() {
                return Err(format!("unknown flag `{flag}` for extrapolate"));
            }
            if to < 1.0 {
                return Err("--to must be at least 1".into());
            }
            Ok(Cli::Extrapolate { pattern: synth, to })
        }
        "diff" => {
            let mut before = None;
            let mut after = None;
            let mut threshold = 0.01f64;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--before" => before = Some(value("--before")?),
                    "--after" => after = Some(value("--after")?),
                    "--threshold" => {
                        threshold = value("--threshold")?
                            .parse()
                            .map_err(|e| format!("--threshold: {e}"))?;
                    }
                    other => return Err(format!("unknown flag `{other}` for diff")),
                }
            }
            if !(0.0..1.0).contains(&threshold) {
                return Err("--threshold must be in [0, 1)".into());
            }
            Ok(Cli::Diff(DiffArgs {
                before: before.ok_or("diff requires --before REPORT.json")?,
                after: after.ok_or("diff requires --after REPORT.json")?,
                threshold,
            }))
        }
        other => Err(format!(
            "unknown command `{other}`; try `dramstack-cli help`"
        )),
    }
}

fn synth_pattern(a: &SynthArgs) -> SyntheticPattern {
    if a.pattern == "seq" {
        SyntheticPattern::sequential(a.stores)
    } else {
        SyntheticPattern::random(a.stores)
    }
}

/// Whether this invocation needs a hand-built simulator with the
/// telemetry layer attached (vs. the plain experiment helper).
fn wants_telemetry(a: &SynthArgs) -> bool {
    a.live
        || env_requests_live()
        || a.telemetry_out.is_some()
        || a.prom_out.is_some()
        || a.report_out.is_some()
}

/// Runs the synthetic workload with streaming telemetry attached:
/// JSONL / Prometheus writers for `--telemetry` / `--prom`, and the live
/// stack dashboard on stderr for `--live` (ANSI on a TTY, periodic plain
/// text otherwise).
fn run_synth_telemetry(a: &SynthArgs) -> Result<SimReport, String> {
    let mut cfg = SystemConfig::paper_default(a.cores);
    cfg.ctrl.page_policy = a.policy;
    cfg.ctrl.mapping = a.mapping;
    cfg.validate().map_err(|e| e.to_string())?;
    let mut sim = Simulator::with_synthetic(cfg, synth_pattern(a));
    let mut tel = Telemetry::new(TelemetryConfig::default());
    if let Some(path) = &a.telemetry_out {
        let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        tel = tel.with_jsonl(Box::new(std::io::BufWriter::new(f)));
    }
    if let Some(path) = &a.prom_out {
        let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        tel = tel.with_prometheus(Box::new(f));
    }
    if a.live || env_requests_live() {
        tel.add_sink(Box::new(LiveSink::new(auto_mode())));
    }
    sim.attach_telemetry(tel);
    let r = sim.run_for_us(a.us);
    if let Some(path) = &a.telemetry_out {
        println!("wrote {path}");
    }
    if let Some(path) = &a.prom_out {
        // The writer only fires every N windows; always leave a final
        // snapshot behind (finish_run wrote it through the writer too,
        // but render on demand keeps the file complete even when the
        // run had no windows).
        if let Some(t) = sim.telemetry() {
            std::fs::write(path, t.prometheus_snapshot()).map_err(|e| format!("{path}: {e}"))?;
        }
        println!("wrote {path}");
    }
    Ok(r)
}

/// Installs the SIGTERM/SIGINT → cooperative-interrupt bridge for
/// checkpointed runs and the serve daemon. No `libc` dependency: the
/// handlers are registered through the raw `signal(2)` symbol every Unix
/// target links anyway, and the handler body is async-signal-safe (two
/// atomic stores, recording which signal fired). Checkpointed run loops
/// poll the flag at checkpoint boundaries, flush one final checkpoint,
/// and exit with the conventional 128+signal code (143 for SIGTERM, 130
/// for ctrl-C); the serve daemon drains gracefully and exits 0.
#[cfg(unix)]
fn install_term_handler() {
    extern "C" fn on_signal(sig: i32) {
        dramstack::sim::request_interrupt_signal(sig);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

/// Exit code for an interrupted run that checkpointed cleanly:
/// 128 + the signal that fired (143 for SIGTERM, 130 for SIGINT).
fn interrupt_exit_code() -> i32 {
    128 + dramstack::sim::interrupt_signal().unwrap_or(15)
}

/// Human name of the interrupting signal, for the checkpoint message
/// ("sigterm: checkpointed at cycle N" is grepped by CI).
fn interrupt_name() -> &'static str {
    match dramstack::sim::interrupt_signal() {
        Some(2) => "sigint",
        _ => "sigterm",
    }
}

/// Runs the synthetic workload under a [`Campaign`]: periodic snapshots
/// into `--checkpoint-dir` (binary delta chains by default, see
/// `--snapshot-format` / `--snapshot-delta`), a manifest entry on
/// completion, and (with `--resume`) skip-if-done /
/// restore-if-interrupted semantics. Returns `None` when a SIGTERM
/// arrived and the run stopped at a final checkpoint instead of
/// finishing.
fn run_synth_checkpointed(a: &SynthArgs, dir: &str) -> Result<Option<SimReport>, String> {
    let mut cfg = SystemConfig::paper_default(a.cores);
    cfg.ctrl.page_policy = a.policy;
    cfg.ctrl.mapping = a.mapping;
    cfg.validate().map_err(|e| e.to_string())?;
    let campaign = Campaign::open(dir).map_err(|e| e.to_string())?;
    let label = format!(
        "synth-{}-{}c-{:?}-{:?}-{}us-{}st",
        a.pattern, a.cores, a.policy, a.mapping, a.us, a.stores
    );
    let key = job_key(&cfg, &label);
    if a.resume {
        if let Some(r) = campaign.load_report(&key).map_err(|e| e.to_string())? {
            println!("resume: job {key} already complete, loaded recorded report");
            return Ok(Some(r));
        }
    }
    install_term_handler();
    let mut sim = Simulator::with_synthetic(cfg.clone(), synth_pattern(a));
    if a.resume {
        if let Some(loaded) = campaign.load_checkpoint_latest(&key) {
            let at = loaded.snapshot.dram_cycle;
            sim.restore(&loaded.snapshot).map_err(|e| e.to_string())?;
            println!(
                "resumed from cycle {at} ({} checkpoint, {} delta(s) applied)",
                loaded.format, loaded.deltas_applied
            );
        }
    }
    let end = cfg.us_to_cycles(a.us);
    let mut chain = campaign
        .open_chain(&key, a.snapshot_format, a.snapshot_delta)
        .map_err(|e| e.to_string())?;
    if a.checkpoint_every > 0 {
        // Manual boundary loop (not `advance_checkpointed`): delta
        // capture advances dirty-tracking marks and therefore needs the
        // simulator by `&mut`. Boundaries still land on exact multiples
        // of `--checkpoint-every`, and checkpoints never perturb the
        // simulation, so results stay bit-identical.
        let every = a.checkpoint_every;
        let mut next = (sim.now() / every + 1) * every;
        while sim.now() < end {
            sim.advance_to_cycle(end.min(next));
            if sim.now() == next {
                chain.checkpoint(&mut sim).map_err(|e| e.to_string())?;
                next += every;
            }
            if dramstack::sim::interrupted() {
                let at = sim.now();
                chain.checkpoint(&mut sim).map_err(|e| e.to_string())?;
                chain.finish().map_err(|e| e.to_string())?;
                println!(
                    "{}: checkpointed at cycle {at}; rerun with --resume to continue",
                    interrupt_name()
                );
                return Ok(None);
            }
        }
    } else {
        sim.advance_to_cycle(end);
    }
    chain.finish().map_err(|e| e.to_string())?;
    let r = sim.report();
    campaign
        .record_done(&key, &label, &r)
        .map_err(|e| e.to_string())?;
    println!(
        "recorded job {key} in {dir}/manifest.json ({} finished)",
        campaign.jobs_done()
    );
    Ok(Some(r))
}

fn run_synth_cmd(a: &SynthArgs) -> Result<(), String> {
    let r = if let Some(dir) = &a.checkpoint_dir {
        if wants_telemetry(a) {
            return Err(
                "--checkpoint-dir cannot be combined with --live/--telemetry/--prom/--report"
                    .into(),
            );
        }
        match run_synth_checkpointed(a, dir)? {
            Some(r) => r,
            // SIGTERM/SIGINT: the final checkpoint is on disk and the
            // writer thread has been joined — nothing left to flush.
            None => std::process::exit(interrupt_exit_code()),
        }
    } else if wants_telemetry(a) {
        run_synth_telemetry(a)?
    } else {
        run_synthetic(a.cores, synth_pattern(a), a.policy, a.mapping, a.us)
            .map_err(|e| e.to_string())?
    };
    let label = format!("{} {}c", a.pattern, a.cores);
    println!(
        "{label}: {:.2} / {:.1} GB/s, read latency {:.1} ns, page-hit {:.1} %",
        r.achieved_gbps(),
        r.bandwidth_stack.peak_gbps(),
        r.avg_read_latency_ns(),
        r.ctrl_stats.read_hit_rate() * 100.0
    );
    let bw_rows = vec![(label.clone(), r.bandwidth_stack.clone())];
    let lat_rows = vec![(label.clone(), r.latency_stack)];
    println!("{}", ascii::bandwidth_chart(&bw_rows));
    println!("{}", ascii::latency_chart(&lat_rows));
    if let Some(path) = &a.csv_out {
        std::fs::write(path, csv::bandwidth_csv(&bw_rows)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if let Some(path) = &a.svg_out {
        std::fs::write(path, svg::bandwidth_figure(&label, &bw_rows)).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    for d in &r.diagnoses {
        println!("advisor: {d}");
    }
    if let Some(path) = &a.report_out {
        std::fs::write(path, r.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Runs the supervised sweep grid; returns whether every job produced a
/// result (partial sweeps exit with code 3 in `main`).
fn run_sweep_cmd(a: &SweepArgs) -> Result<bool, String> {
    let campaign = match &a.checkpoint_dir {
        Some(d) => Some(Campaign::open(d).map_err(|e| e.to_string())?),
        None => None,
    };
    if campaign.is_some() {
        // With a campaign attached SIGTERM becomes a cooperative stop:
        // in-flight grid points flush a final checkpoint and abort, and
        // the process exits 143 below instead of dying mid-write.
        install_term_handler();
    }
    let sup = SupervisorConfig {
        deadline: a.deadline_secs.map(std::time::Duration::from_secs_f64),
        max_retries: a.retries,
        ..SupervisorConfig::default()
    };
    let inject = SweepInjection {
        panic_at: a.inject_panic,
        hang_at: a.inject_hang,
    };
    let sweep = sweep_synthetic_supervised(
        &a.cores,
        &a.policies,
        &a.mappings,
        a.stores,
        a.us,
        campaign.as_ref(),
        SweepCheckpointing {
            every: a.checkpoint_every,
            format: a.snapshot_format,
            delta: a.snapshot_delta,
        },
        a.resume,
        &sup,
        inject,
    )
    .map_err(|e| e.to_string())?;
    if dramstack::sim::interrupted() {
        println!(
            "{}: in-flight jobs checkpointed; rerun with --resume to continue",
            interrupt_name()
        );
        std::process::exit(interrupt_exit_code());
    }

    // Rebuild the grid labels in the same input order the sweep used.
    let mut labels = Vec::new();
    for pattern in ["seq", "rand"] {
        for &n in &a.cores {
            for &policy in &a.policies {
                for &mapping in &a.mappings {
                    labels.push(format!("{pattern} {n}c {policy:?} {mapping:?}"));
                }
            }
        }
    }
    let failures = &sweep.failures;
    for (i, point) in sweep.points.iter().enumerate() {
        if let Some(p) = point {
            let note = failures
                .retried
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, attempts)| format!(" (after {attempts} attempts)"))
                .unwrap_or_default();
            println!(
                "job {i:02} {}: ok {:.2} GB/s, {:.1} ns{note}",
                labels[i],
                p.report.achieved_gbps(),
                p.report.avg_read_latency_ns()
            );
        }
    }
    for (i, msg) in &failures.panicked {
        println!("job {i:02} {}: PANICKED: {msg}", labels[*i]);
    }
    for i in &failures.timed_out {
        println!("job {i:02} {}: TIMED OUT (watchdog)", labels[*i]);
    }
    if a.resume && sweep.skipped > 0 {
        println!("resume: skipped {} finished job(s)", sweep.skipped);
    }
    let ok = sweep.points.iter().filter(|p| p.is_some()).count();
    println!(
        "sweep: {ok}/{} ok, {} panicked, {} timed out, {} retried",
        sweep.points.len(),
        failures.panicked.len(),
        failures.timed_out.len(),
        failures.retried.len()
    );
    if let Some(c) = &campaign {
        println!(
            "manifest: {}/manifest.json ({} finished)",
            c.dir().display(),
            c.jobs_done()
        );
    }
    Ok(failures.none_lost())
}

/// Runs the simulation service until SIGTERM/SIGINT, then drains
/// gracefully. A drained exit is a success (code 0) — jobs in flight
/// either finished or were cancelled-with-checkpoint.
fn run_serve_cmd(a: &ServeArgs) -> Result<(), String> {
    use dramstack::serve::{ServeConfig, Server};
    install_term_handler();
    let cfg = ServeConfig {
        addr: a.addr.clone(),
        workers: a.workers,
        queue_cap: a.queue_cap,
        max_body_bytes: a.max_body_kb * 1024,
        job_deadline: a.job_deadline_secs.map(std::time::Duration::from_secs_f64),
        job_stall_timeout: std::time::Duration::from_secs_f64(a.job_stall_secs),
        drain_grace: std::time::Duration::from_secs_f64(a.drain_grace_secs),
        checkpoint_dir: a.checkpoint_dir.as_ref().map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).map_err(|e| format!("bind {}: {e}", a.addr))?;
    // Flushed before blocking so wrappers (CI, tests) can scrape the
    // actual port even when stdout is a pipe.
    println!("serving on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = server.serve();
    println!(
        "drained: {} accepted, {} completed, {} failed, {} timed out, {} cancelled, {} shed",
        stats.accepted,
        stats.completed,
        stats.failed,
        stats.timed_out,
        stats.cancelled,
        stats.shed_429 + stats.shed_drain
    );
    Ok(())
}

fn run_diff_cmd(a: &DiffArgs) -> Result<(), String> {
    let load = |path: &str| -> Result<SimReport, String> {
        // Typed loader: I/O errors name the file, malformed or
        // schema-incompatible JSON adds line:column of the bad token.
        load_report(path).map_err(|e| e.to_string())
    };
    let before = load(&a.before)?;
    let after = load(&a.after)?;
    let (bw, lat) = diff_reports(&before, &after, a.threshold);
    println!(
        "diff: {} -> {}  ({:.2} -> {:.2} GB/s, {:.1} -> {:.1} ns)",
        a.before,
        a.after,
        before.achieved_gbps(),
        after.achieved_gbps(),
        before.avg_read_latency_ns(),
        after.avg_read_latency_ns()
    );
    println!("{}", bw.render());
    println!("{}", lat.render());
    Ok(())
}

fn run_gap_cmd(a: &GapArgs) -> Result<(), String> {
    let graph = Graph::kronecker(a.scale, a.degree, 42);
    println!(
        "graph: {} vertices, {} directed edges",
        graph.n,
        graph.edge_count()
    );
    let r = run_gap(
        a.kernel,
        &graph,
        a.cores,
        a.policy,
        a.mapping,
        32,
        &GapConfig::default(),
        1_000_000_000,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{} {}c: {:.2} ms simulated, {:.2} GB/s, latency {:.1} ns, IPC {:.2}",
        a.kernel,
        a.cores,
        r.elapsed_us / 1000.0,
        r.achieved_gbps(),
        r.avg_read_latency_ns(),
        r.ipc()
    );
    let label = format!("{} {}c", a.kernel, a.cores);
    println!(
        "{}",
        ascii::bandwidth_chart(&[(label.clone(), r.bandwidth_stack.clone())])
    );
    println!("{}", ascii::latency_chart(&[(label, r.latency_stack)]));
    Ok(())
}

fn run_trace_cmd(input: &str, cycles: u64) -> Result<(), String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let cmds = dramstack::dram::trace::parse_trace(&text).map_err(|e| e.to_string())?;
    let total = if cycles > 0 {
        cycles
    } else {
        cmds.last().map(|c| c.at + 500).unwrap_or(1)
    };
    let stack = stack_from_trace(&cmds, dramstack::dram::DeviceConfig::ddr4_2400(), total)
        .map_err(|e| e.to_string())?;
    println!("{} commands over {total} cycles", cmds.len());
    println!("{}", ascii::bandwidth_chart(&[("trace".into(), stack)]));
    Ok(())
}

fn run_reqtrace_cmd(input: &str) -> Result<(), String> {
    use dramstack::memctrl::CtrlConfig;
    use dramstack::sim::replay::{parse_requests, replay_requests};
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let reqs = parse_requests(&text).map_err(|e| e.to_string())?;
    let result = replay_requests(&reqs, CtrlConfig::paper_default(), 12_000, 2_000_000_000)
        .map_err(|e| e.to_string())?;
    println!(
        "{} reads + {} writes drained in {} cycles",
        result.reads, result.writes, result.finished_at
    );
    println!(
        "{}",
        ascii::bandwidth_chart(&[("trace".into(), result.bandwidth_stack)])
    );
    println!(
        "{}",
        ascii::latency_chart(&[("trace".into(), result.latency_stack)])
    );
    Ok(())
}

fn run_extrapolate_cmd(a: &SynthArgs, to: f64) -> Result<(), String> {
    let r = run_synthetic(a.cores, synth_pattern(a), a.policy, a.mapping, a.us)
        .map_err(|e| e.to_string())?;
    let samples: Vec<_> = r.samples.iter().map(|s| s.bandwidth.clone()).collect();
    println!(
        "measured at {} core(s): {:.2} GB/s over {} samples",
        a.cores,
        r.achieved_gbps(),
        samples.len()
    );
    println!("predicted at {to:.0}x cores:");
    println!(
        "  naive : {:.2} GB/s",
        predict_bandwidth_naive(&samples, to)
    );
    println!(
        "  stack : {:.2} GB/s",
        predict_bandwidth_stack(&samples, to)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `sweep` owns its exit codes: 0 all ok, 3 partial (salvaged), 1 error.
    if let Cli::Sweep(a) = &cli {
        return match run_sweep_cmd(a) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(3),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match &cli {
        Cli::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Cli::Synth(a) => run_synth_cmd(a),
        Cli::Sweep(_) => unreachable!("handled above"),
        Cli::Gap(a) => run_gap_cmd(a),
        Cli::Trace { input, cycles } => run_trace_cmd(input, *cycles),
        Cli::ReqTrace { input } => run_reqtrace_cmd(input),
        Cli::Extrapolate { pattern, to } => run_extrapolate_cmd(pattern, *to),
        Cli::Diff(a) => run_diff_cmd(a),
        Cli::Serve(a) => run_serve_cmd(a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_synth_defaults_and_flags() {
        let cli = parse_cli(&args("synth")).unwrap();
        assert_eq!(cli, Cli::Synth(SynthArgs::default()));
        let cli = parse_cli(&args(
            "synth --pattern rand --cores 8 --stores 0.5 --policy closed --mapping int --us 50",
        ))
        .unwrap();
        match cli {
            Cli::Synth(a) => {
                assert_eq!(a.pattern, "rand");
                assert_eq!(a.cores, 8);
                assert!((a.stores - 0.5).abs() < 1e-12);
                assert_eq!(a.policy, PagePolicy::Closed);
                assert_eq!(a.mapping, MappingScheme::CacheLineInterleaved);
                assert!((a.us - 50.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_gap() {
        let cli = parse_cli(&args("gap --kernel tc --cores 2 --scale 10")).unwrap();
        match cli {
            Cli::Gap(a) => {
                assert_eq!(a.kernel, GapKernel::Tc);
                assert_eq!(a.cores, 2);
                assert_eq!(a.scale, 10);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_trace_requires_input() {
        assert!(parse_cli(&args("trace")).is_err());
        let cli = parse_cli(&args("trace --input t.txt --cycles 500")).unwrap();
        assert_eq!(
            cli,
            Cli::Trace {
                input: "t.txt".into(),
                cycles: 500
            }
        );
    }

    #[test]
    fn parse_extrapolate_mixes_flags() {
        let cli = parse_cli(&args("extrapolate --pattern rand --to 16 --cores 2")).unwrap();
        match cli {
            Cli::Extrapolate { pattern, to } => {
                assert_eq!(pattern.pattern, "rand");
                assert_eq!(pattern.cores, 2);
                assert!((to - 16.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_synth_telemetry_flags() {
        let cli = parse_cli(&args(
            "synth --live --telemetry t.jsonl --prom p.prom --report r.json",
        ))
        .unwrap();
        match cli {
            Cli::Synth(a) => {
                assert!(a.live);
                assert_eq!(a.telemetry_out.as_deref(), Some("t.jsonl"));
                assert_eq!(a.prom_out.as_deref(), Some("p.prom"));
                assert_eq!(a.report_out.as_deref(), Some("r.json"));
            }
            other => panic!("{other:?}"),
        }
        // Defaults stay off so plain runs keep using the experiment helper.
        let d = SynthArgs::default();
        assert!(!d.live);
        assert!(d.telemetry_out.is_none() && d.prom_out.is_none() && d.report_out.is_none());
    }

    #[test]
    fn parse_diff() {
        let cli = parse_cli(&args(
            "diff --before a.json --after b.json --threshold 0.05",
        ))
        .unwrap();
        assert_eq!(
            cli,
            Cli::Diff(DiffArgs {
                before: "a.json".into(),
                after: "b.json".into(),
                threshold: 0.05
            })
        );
        assert!(parse_cli(&args("diff --before a.json")).is_err());
        assert!(parse_cli(&args("diff --before a.json --after b.json --threshold 2")).is_err());
    }

    #[test]
    fn parse_synth_checkpoint_flags() {
        let cli = parse_cli(&args(
            "synth --cores 2 --checkpoint-dir ckpt --checkpoint-every 600000 --resume",
        ))
        .unwrap();
        match cli {
            Cli::Synth(a) => {
                assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpt"));
                assert_eq!(a.checkpoint_every, 600_000);
                assert!(a.resume);
            }
            other => panic!("{other:?}"),
        }
        // --resume without a directory to resume from is an error.
        assert!(parse_cli(&args("synth --resume")).is_err());
    }

    #[test]
    fn parse_snapshot_format_flags() {
        // Binary delta chains are the default for both commands.
        let Cli::Synth(a) = parse_cli(&args("synth")).unwrap() else {
            unreachable!()
        };
        assert_eq!(a.snapshot_format, SnapshotFormat::Binary);
        assert!(a.snapshot_delta);
        let cli = parse_cli(&args(
            "synth --checkpoint-dir c --snapshot-format json --snapshot-delta off",
        ))
        .unwrap();
        match cli {
            Cli::Synth(a) => {
                assert_eq!(a.snapshot_format, SnapshotFormat::Json);
                assert!(!a.snapshot_delta);
            }
            other => panic!("{other:?}"),
        }
        let cli = parse_cli(&args(
            "sweep --checkpoint-dir c --snapshot-format binary --snapshot-delta on",
        ))
        .unwrap();
        match cli {
            Cli::Sweep(a) => {
                assert_eq!(a.snapshot_format, SnapshotFormat::Binary);
                assert!(a.snapshot_delta);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_cli(&args("synth --snapshot-format msgpack")).is_err());
        assert!(parse_cli(&args("sweep --snapshot-delta maybe")).is_err());
    }

    #[test]
    fn parse_sweep() {
        let cli = parse_cli(&args(
            "sweep --cores 1,2,8 --policies open,closed --mappings def,int \
             --us 20 --checkpoint-dir d --resume --deadline-secs 5 --retries 2 \
             --inject-panic 3 --inject-hang 4",
        ))
        .unwrap();
        match cli {
            Cli::Sweep(a) => {
                assert_eq!(a.cores, vec![1, 2, 8]);
                assert_eq!(a.policies, vec![PagePolicy::Open, PagePolicy::Closed]);
                assert_eq!(
                    a.mappings,
                    vec![
                        MappingScheme::RowBankColumn,
                        MappingScheme::CacheLineInterleaved
                    ]
                );
                assert!((a.us - 20.0).abs() < 1e-12);
                assert_eq!(a.checkpoint_dir.as_deref(), Some("d"));
                assert!(a.resume);
                assert_eq!(a.deadline_secs, Some(5.0));
                assert_eq!(a.retries, 2);
                assert_eq!(a.inject_panic, Some(3));
                assert_eq!(a.inject_hang, Some(4));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_cli(&args("sweep")).unwrap(),
            Cli::Sweep(SweepArgs::default())
        );
        assert!(parse_cli(&args("sweep --cores 0,2")).is_err());
        assert!(parse_cli(&args("sweep --policies fancy")).is_err());
        assert!(parse_cli(&args("sweep --resume")).is_err());
        assert!(parse_cli(&args("sweep --deadline-secs -1")).is_err());
    }

    #[test]
    fn parse_serve() {
        assert_eq!(
            parse_cli(&args("serve")).unwrap(),
            Cli::Serve(ServeArgs::default())
        );
        let cli = parse_cli(&args(
            "serve --addr 127.0.0.1:0 --workers 4 --queue-cap 2 --max-body-kb 8 \
             --job-deadline-secs 0 --job-stall-secs 1.5 --drain-grace-secs 3 \
             --checkpoint-dir ckpt",
        ))
        .unwrap();
        match cli {
            Cli::Serve(a) => {
                assert_eq!(a.addr, "127.0.0.1:0");
                assert_eq!(a.workers, 4);
                assert_eq!(a.queue_cap, 2);
                assert_eq!(a.max_body_kb, 8);
                assert_eq!(a.job_deadline_secs, None); // 0 disables
                assert!((a.job_stall_secs - 1.5).abs() < 1e-12);
                assert!((a.drain_grace_secs - 3.0).abs() < 1e-12);
                assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpt"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_cli(&args("serve --workers 0")).is_err());
        assert!(parse_cli(&args("serve --queue-cap 0")).is_err());
        assert!(parse_cli(&args("serve --bogus 1")).is_err());
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse_cli(&args("synth --pattern diagonal")).is_err());
        assert!(parse_cli(&args("synth --stores 1.5")).is_err());
        assert!(parse_cli(&args("synth --cores 0")).is_err());
        assert!(parse_cli(&args("gap --kernel quicksort")).is_err());
        assert!(parse_cli(&args("gap --scale 30")).is_err());
        assert!(parse_cli(&args("frobnicate")).is_err());
        assert!(parse_cli(&args("extrapolate --to 0.5")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse_cli(&[]).unwrap(), Cli::Help);
        assert_eq!(parse_cli(&args("help")).unwrap(), Cli::Help);
        assert_eq!(parse_cli(&args("--help")).unwrap(), Cli::Help);
    }
}
