//! Reproduce the spirit of the paper's Fig. 1: a per-bank command
//! timeline for a small burst of traffic, next to the bandwidth stack the
//! hierarchical accounting derives from those same cycles.
//!
//! ```sh
//! cargo run --release --example fig1_timeline
//! ```

use dramstack::dram::{CycleView, DeviceConfig};
use dramstack::memctrl::{CtrlConfig, MemoryController};
use dramstack::stacks::offline::stack_from_trace;
use dramstack::viz::{ascii, timeline};

fn main() {
    // Drive a short, mixed burst: reads on two banks, a row conflict,
    // and a write — the ingredients of the paper's Fig. 1.
    let mut ctrl = MemoryController::new(CtrlConfig::paper_default());
    ctrl.enable_command_trace();
    let mut view = CycleView::idle(ctrl.total_banks());

    // bank r0g0b0 row 0, bank r0g1b0 row 0, then a conflicting row on
    // bank 0, then a write.
    ctrl.enqueue_read(0x0000, 0); // g0b0 row 0
    ctrl.enqueue_read(0x2000, 1); // g1b0 row 0 (bit 13 = bank group)
    ctrl.enqueue_read(1 << 17, 2); // g0b0 row 1: row conflict
    ctrl.enqueue_write(0x2040);

    let horizon = 160;
    for now in 0..horizon {
        ctrl.tick(now, &mut view);
        ctrl.drain_completions().for_each(drop);
    }
    let trace = ctrl.take_command_trace();

    println!("-- command timeline (cf. paper Fig. 1) --");
    let timing = dramstack::dram::TimingParams::ddr4_2400();
    println!(
        "{}",
        timeline::command_timeline(&trace, &timing, 0, horizon as usize)
    );

    println!("-- the issued commands --");
    for t in &trace {
        println!("  cycle {:>4}: {}", t.at, t.cmd);
    }

    // The same cycles, accounted into a bandwidth stack (offline, straight
    // from the trace).
    let stack = stack_from_trace(&trace, DeviceConfig::ddr4_2400(), horizon).unwrap();
    println!("\n-- resulting bandwidth stack over these {horizon} cycles --");
    println!("{}", ascii::bandwidth_chart(&[("fig1".into(), stack)]));
}
