//! Live stack telemetry end to end: stream per-window stacks as JSON
//! lines, render the terminal dashboard, take a Prometheus snapshot, ask
//! the bottleneck advisor what limited the run, and diff two runs.
//!
//! ```sh
//! cargo run --release --example live_telemetry
//! ```

use dramstack::live::{LiveMode, LiveSink};
use dramstack::sim::{diff_reports, Simulator, SystemConfig, Telemetry, TelemetryConfig};
use dramstack::workloads::SyntheticPattern;

fn main() {
    // --- A refresh-heavy run with the full telemetry stack attached ---
    let mut cfg = SystemConfig::paper_default(1);
    cfg.ctrl.device.timing.t_refi = 2_000; // storm: REF every 2k cycles

    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
    let mut tel =
        Telemetry::new(TelemetryConfig::default()).with_jsonl(Box::new(std::io::stdout()));
    // The plain-mode dashboard draws a text block every 16 windows on
    // stderr; on an interactive terminal use `auto_mode()` instead.
    tel.add_sink(Box::new(LiveSink::new(LiveMode::Plain)));
    sim.attach_telemetry(tel);
    let stormy = sim.run_for_us(100.0);

    eprintln!("\n--- Prometheus snapshot ---");
    eprintln!("{}", sim.telemetry().unwrap().prometheus_snapshot());

    eprintln!("--- Advisor ---");
    for d in &stormy.diagnoses {
        eprintln!("{d}");
    }

    // --- Diff against a healthy baseline of the same workload ---
    let baseline = Simulator::with_synthetic(
        SystemConfig::paper_default(1),
        SyntheticPattern::sequential(0.0),
    )
    .run_for_us(100.0);
    let (bw, lat) = diff_reports(&baseline, &stormy, 0.01);
    eprintln!("--- Diff: baseline -> refresh storm ---");
    eprintln!("{}", bw.render());
    eprintln!("{}", lat.render());
}
