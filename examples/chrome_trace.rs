//! Capture a Chrome trace of a Fig. 2-style run: four cores reading
//! sequentially at full throttle, with a `ChromeTraceProbe` attached to
//! the memory controller and simulator self-profiling enabled.
//!
//! ```sh
//! cargo run --release --example chrome_trace > /tmp/dramstack-trace.json
//! ```
//!
//! Load the JSON in <https://ui.perfetto.dev> (or `chrome://tracing`):
//! each bank gets a track, read requests appear as spans with nested
//! `queued`/`burst` phases, DRAM commands as instant markers, and
//! write-drain/refresh windows on their own tracks.

use dramstack::obs::ChromeTraceProbe;
use dramstack::sim::{Simulator, SystemConfig};
use dramstack::workloads::SyntheticPattern;

fn main() {
    // The paper's Fig. 2 saturation point: 4 cores, sequential reads,
    // some stores so write drains appear in the trace.
    let cfg = SystemConfig::paper_default(4);
    let cycle_ns = cfg.dram_cycle_ns();
    let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.2));
    sim.enable_profiling();

    let (probe, handle) = ChromeTraceProbe::new(0, cycle_ns);
    sim.attach_probe(0, Box::new(probe));

    // A short window keeps the trace small enough to browse comfortably.
    let report = sim.run_for_us(5.0);

    let trace = handle.build();
    println!("{}", trace.to_json());

    eprintln!("-- run summary --");
    eprintln!("achieved bandwidth : {:.2} GB/s", report.achieved_gbps());
    eprintln!(
        "avg read latency   : {:.1} ns",
        report.avg_read_latency_ns()
    );
    eprintln!("trace events       : {}", trace.events.len());
    eprintln!("DRAM commands      : {}", trace.command_sequence().len());
    let perf = &report.perf;
    eprintln!(
        "host time          : {:.3} s ({:.0} sim-cycles/s)",
        perf.wall_seconds, perf.sim_cycles_per_second
    );
    for (phase, secs) in &perf.phases {
        eprintln!("  {phase:<12} {secs:.4} s");
    }
}
