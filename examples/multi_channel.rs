//! Per-channel and aggregated bandwidth stacks on a dual-channel system —
//! the paper's "one stack per memory controller, aggregated afterwards".
//!
//! ```sh
//! cargo run --release --example multi_channel
//! ```

use dramstack::sim::{Simulator, SystemConfig};
use dramstack::viz::ascii;
use dramstack::workloads::SyntheticPattern;

fn main() {
    for channels in [1usize, 2] {
        let mut cfg = SystemConfig::paper_default(8);
        cfg.channels = channels;
        let mut sim = Simulator::with_synthetic(cfg, SyntheticPattern::sequential(0.0));
        let r = sim.run_for_us(100.0);
        println!(
            "{channels} channel(s): {:.2} / {:.1} GB/s, read latency {:.1} ns",
            r.achieved_gbps(),
            r.bandwidth_stack.peak_gbps(),
            r.avg_read_latency_ns()
        );
        let mut rows = vec![("aggregate".to_string(), r.bandwidth_stack.clone())];
        for (i, s) in r.channel_stacks.iter().enumerate() {
            rows.push((format!("channel {i}"), s.clone()));
        }
        // Note: the aggregate bar is normalized to the *system* peak,
        // the channel bars to the per-channel peak.
        println!("{}", ascii::bandwidth_chart(&rows));
    }
    println!(
        "same cores, same workload: the second channel roughly doubles the saturated\n\
         bandwidth and cuts the queueing latency — exactly what the per-channel stacks\n\
         (both far from their peaks now) predict."
    );
}
