//! Client smoke for a running `dramstack serve` daemon: submits jobs
//! through the retrying client, waits for completion, and validates the
//! results — exactly what CI does after starting the daemon.
//!
//! ```sh
//! dramstack-cli serve --addr 127.0.0.1:7077 &
//! cargo run --release --example serve_smoke -- 127.0.0.1:7077
//! ```
//!
//! Exits non-zero on any failed check, so it doubles as a health gate.

use std::time::Duration;

use dramstack::serve::Client;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("DRAMSTACK_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let mut client = Client::new(addr.clone());
    client.retries = 5;
    client.backoff = Duration::from_millis(200);

    let health = client.healthz().expect("healthz");
    assert_eq!(health.trim(), "ok", "unexpected healthz body: {health}");
    assert!(client.readyz().expect("readyz"), "server is draining");
    println!("healthz ok, ready");

    // A pair of jobs with different shapes; the retrying submitter
    // rides out transient 429s if the daemon is busy.
    let specs = [
        r#"{"pattern":"seq","cores":2,"us":60}"#,
        r#"{"pattern":"rand","cores":1,"stores":0.2,"us":30}"#,
    ];
    for spec in specs {
        let id = client.submit_job_with_retry(spec).expect("submit");
        let status = client
            .wait_job(id, Duration::from_secs(300))
            .expect("job finishes");
        assert!(
            status.contains("\"status\":\"done\""),
            "job {id} did not complete: {status}"
        );
        println!("job {id} done ({spec})");

        let lines = client.stream_lines(id).expect("stream");
        assert!(!lines.is_empty(), "job {id} streamed no telemetry windows");
        println!("job {id} streamed {} telemetry window(s)", lines.len());
    }

    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("dramstack_serve_jobs_total"),
        "serve counters missing from /metrics"
    );
    assert!(
        metrics.contains("dramstack_windows_total"),
        "fleet telemetry missing from /metrics"
    );
    println!("metrics ok — serve smoke passed against {addr}");
}
