//! Analyze a graph workload with bandwidth, latency and cycle stacks —
//! the paper's Section VIII methodology on a BFS kernel.
//!
//! ```sh
//! cargo run --release --example graph_analysis
//! ```

use dramstack::cpu::CycleComponent;
use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::run_gap;
use dramstack::viz::ascii;
use dramstack::workloads::{GapConfig, GapKernel, Graph};

fn main() {
    // A Kronecker (RMAT) graph like GAP's, scaled for quick simulation.
    let graph = Graph::kronecker(13, 12, 42);
    println!(
        "graph: 2^13 = {} vertices, {} directed edges, max degree {}",
        graph.n,
        graph.edge_count(),
        graph.degree(graph.max_degree_vertex())
    );

    // Run direction-optimizing BFS on 4 cores (closed page policy, which
    // the paper found best for the irregular GAP access patterns).
    let report = run_gap(
        GapKernel::Bfs,
        &graph,
        4,
        PagePolicy::Closed,
        MappingScheme::RowBankColumn,
        32,
        &GapConfig::default(),
        100_000_000,
    )
    .expect("paper configuration is valid");

    println!(
        "\nbfs finished in {:.2} ms simulated, {} instructions retired, IPC {:.2}",
        report.elapsed_us / 1000.0,
        report.instrs_retired,
        report.ipc()
    );

    println!("\n-- DRAM bandwidth stack --");
    println!(
        "{}",
        ascii::bandwidth_chart(&[("bfs 4c".into(), report.bandwidth_stack.clone())])
    );

    println!("-- DRAM latency stack --");
    println!(
        "{}",
        ascii::latency_chart(&[("bfs 4c".into(), report.latency_stack)])
    );

    println!("-- CPU cycle stack (summed over cores) --");
    for (c, f) in report.cycle_stack.rows() {
        println!("  {:14} {:5.1} %", c.label(), f * 100.0);
    }
    let dram_frac = report.cycle_stack.fraction(CycleComponent::DramBase)
        + report.cycle_stack.fraction(CycleComponent::DramQueue);
    println!(
        "\nbfs spends {:.0} % of core cycles waiting on DRAM -> memory bound, as the paper observes",
        dram_frac * 100.0
    );

    println!(
        "\n-- through-time bandwidth ({} samples) --",
        report.samples.len()
    );
    println!("{}", ascii::through_time_strip(&report.samples, 8));
}
