//! Quickstart: simulate one core streaming through memory and print its
//! DRAM bandwidth and latency stacks.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dramstack::sim::{Simulator, SystemConfig};
use dramstack::viz::ascii;
use dramstack::workloads::SyntheticPattern;

fn main() {
    // The paper's setup: DDR4-2400 (19.2 GB/s peak), FR-FCFS, open page.
    let cfg = SystemConfig::paper_default(1);

    // A sequential read-only stream, the simplest memory-bound workload.
    let pattern = SyntheticPattern::sequential(0.0);
    let mut sim = Simulator::with_synthetic(cfg, pattern);

    // Simulate 200 µs of steady state.
    let report = sim.run_for_us(200.0);

    println!("achieved bandwidth : {:6.2} GB/s", report.achieved_gbps());
    println!(
        "peak bandwidth     : {:6.2} GB/s",
        report.bandwidth_stack.peak_gbps()
    );
    println!(
        "avg read latency   : {:6.1} ns",
        report.avg_read_latency_ns()
    );
    println!(
        "row-buffer hit rate: {:6.1} %",
        report.ctrl_stats.read_hit_rate() * 100.0
    );
    println!();

    // The bandwidth stack: where did the other ~13 GB/s go?
    println!(
        "{}",
        ascii::bandwidth_chart(&[("seq 1c".into(), report.bandwidth_stack.clone())])
    );

    // The latency stack: what makes up those nanoseconds?
    println!(
        "{}",
        ascii::latency_chart(&[("seq 1c".into(), report.latency_stack)])
    );

    // Per-component numbers, like the paper's Section IV example.
    println!("bandwidth components (GB/s):");
    for (c, gbps) in report.bandwidth_stack.rows() {
        println!("  {:12} {:6.2}", c.label(), gbps);
    }
}
