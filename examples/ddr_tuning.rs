//! Use bandwidth/latency stacks to choose memory-controller settings —
//! the paper's "what can be done about each component" workflow
//! (Section IV) applied to a store-heavy stream.
//!
//! ```sh
//! cargo run --release --example ddr_tuning
//! ```

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::run_synthetic;
use dramstack::stacks::{BwComponent, LatComponent};
use dramstack::viz::ascii;
use dramstack::workloads::SyntheticPattern;

fn main() {
    let us = 150.0;
    let pattern = SyntheticPattern::sequential(0.5); // 50 % stores

    // Step 1: measure the baseline and read the stacks.
    let base = run_synthetic(
        1,
        pattern,
        PagePolicy::Open,
        MappingScheme::RowBankColumn,
        us,
    )
    .expect("paper configuration is valid");
    println!(
        "baseline (default mapping, open page): {:.2} GB/s",
        base.achieved_gbps()
    );
    println!(
        "{}",
        ascii::bandwidth_chart(&[("baseline".into(), base.bandwidth_stack.clone())])
    );

    // Step 2: diagnose. A large bank-idle component *plus* large queueing
    // and writeburst latency means poor bank interleaving (paper
    // Section V: "bank interleaving should be improved").
    let bank_idle = base.bandwidth_stack.gbps(BwComponent::BankIdle);
    let queue_ns = base.latency_stack.ns(LatComponent::Queue)
        + base.latency_stack.ns(LatComponent::WriteBurst);
    println!(
        "diagnosis: bank-idle {bank_idle:.2} GB/s, queue+writeburst {queue_ns:.1} ns -> bank interleaving problem\n"
    );

    // Step 3: apply the fix the stacks suggest — cache-line interleaved
    // indexing (Fig. 5b) — and compare.
    let fixed = run_synthetic(
        1,
        pattern,
        PagePolicy::Open,
        MappingScheme::CacheLineInterleaved,
        us,
    )
    .expect("paper configuration is valid");
    println!(
        "cache-line interleaved mapping: {:.2} GB/s",
        fixed.achieved_gbps()
    );
    println!(
        "{}",
        ascii::bandwidth_chart(&[
            ("baseline".into(), base.bandwidth_stack.clone()),
            ("interleave".into(), fixed.bandwidth_stack.clone()),
        ])
    );
    println!(
        "{}",
        ascii::latency_chart(&[
            ("baseline".into(), base.latency_stack),
            ("interleave".into(), fixed.latency_stack),
        ])
    );

    let gain = (fixed.achieved_gbps() / base.achieved_gbps() - 1.0) * 100.0;
    println!("bandwidth change: {gain:+.1} %");
    println!(
        "note the trade-off the paper highlights: pre/act latency rose from {:.1} to {:.1} ns \
         while queueing fell — interleaving helps only when queueing dominated.",
        base.latency_stack.ns(LatComponent::PreAct),
        fixed.latency_stack.ns(LatComponent::PreAct),
    );
}
