//! STREAM through the stack lens: the four classic bandwidth kernels, and
//! what the bandwidth stack says about each, plus a pointer-chase latency
//! microbenchmark for the latency stack.
//!
//! ```sh
//! cargo run --release --example stream_bandwidth
//! ```

use dramstack::sim::{Simulator, SystemConfig};
use dramstack::stacks::LatComponent;
use dramstack::viz::ascii;
use dramstack::workloads::{pointer_chase_trace, stream_trace, StreamKernel};

fn main() {
    let cores = 4;
    let elems = 400_000u64; // 3 × 3.2 MB arrays: well beyond the LLC slice

    let mut rows = Vec::new();
    println!("STREAM on {cores} cores, {elems} elements per array:");
    for kernel in StreamKernel::ALL {
        let traces = stream_trace(kernel, cores, elems);
        let mut cfg = SystemConfig::paper_gap(cores); // 1 MB LLC: arrays don't fit
        cfg.sample_period = 2_400;
        let mut sim = Simulator::with_traces(cfg, traces);
        let r = sim.run_to_completion(200_000_000);
        let algo_gbps = (kernel.bytes_per_element() * elems) as f64 / (r.elapsed_us * 1000.0);
        println!(
            "  {:6}  DRAM {:5.2} GB/s  (STREAM-counted {:5.2} GB/s)  read:write {:4.2}",
            kernel.name(),
            r.achieved_gbps(),
            algo_gbps,
            r.bandwidth_stack.gbps(dramstack::stacks::BwComponent::Read)
                / r.bandwidth_stack
                    .gbps(dramstack::stacks::BwComponent::Write)
                    .max(0.01),
        );
        rows.push((kernel.name().to_string(), r.bandwidth_stack.clone()));
    }
    println!("\n{}", ascii::bandwidth_chart(&rows));

    println!("pointer chase (loaded latency), 8 KiB stride = every access a new row:");
    let trace = pointer_chase_trace(64 << 20, 8192, 4_000);
    let mut sim = Simulator::with_traces(SystemConfig::paper_default(1), trace);
    let r = sim.run_to_completion(100_000_000);
    println!(
        "  average {:.1} ns  (base {:.1} + act/pre {:.1} + queue {:.1})",
        r.avg_read_latency_ns(),
        r.latency_stack.base_ns(),
        r.latency_stack.ns(LatComponent::PreAct),
        r.latency_stack.ns(LatComponent::Queue),
    );
    println!(
        "  p50 {:.0} / p99 {:.0} DRAM cycles over {} reads",
        r.latency_histogram.percentile(50.0) as f64,
        r.latency_histogram.percentile(99.0) as f64,
        r.latency_histogram.count(),
    );
}
