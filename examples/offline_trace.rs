//! Offline stack construction from a command trace — the paper's
//! hardware-profiling workflow: capture `(cycle, command)` records from a
//! memory controller (or an FPGA probe between controller and DIMM), then
//! build the bandwidth stack after the fact.
//!
//! ```sh
//! cargo run --release --example offline_trace
//! ```

use dramstack::dram::{trace, CycleView, DeviceConfig};
use dramstack::memctrl::{CtrlConfig, MemoryController};
use dramstack::stacks::offline::stack_from_trace;
use dramstack::stacks::BandwidthAccountant;
use dramstack::viz::ascii;

fn main() {
    // 1. Run a controller with command tracing enabled (stand-in for a
    //    hardware capture).
    let cfg = CtrlConfig::paper_default();
    let peak = cfg.device.peak_bandwidth_gbps();
    let mut ctrl = MemoryController::new(cfg);
    ctrl.enable_command_trace();
    let mut online = BandwidthAccountant::new(ctrl.total_banks(), peak);
    let mut view = CycleView::idle(ctrl.total_banks());

    let cycles = 100_000u64;
    let mut addr = 0u64;
    for now in 0..cycles {
        // A mixed request pattern: mostly sequential reads, some strided
        // writes.
        if now % 10 == 0 && ctrl.can_accept_read() {
            ctrl.enqueue_read(addr, 0);
            addr += 64;
        }
        if now % 37 == 0 && ctrl.can_accept_write() {
            ctrl.enqueue_write((now * 7919) % (1 << 30));
        }
        ctrl.tick(now, &mut view);
        online.account(&view);
        ctrl.drain_completions().for_each(drop);
    }
    let cmds = ctrl.take_command_trace();
    println!("captured {} DRAM commands over {cycles} cycles", cmds.len());

    // 2. Serialize / parse the text trace (what you'd store on disk).
    let text = trace::write_trace(&cmds);
    println!(
        "trace head:\n{}",
        text.lines().take(5).collect::<Vec<_>>().join("\n")
    );
    let parsed = trace::parse_trace(&text).expect("well-formed trace");

    // 3. Rebuild the stack offline and compare with the live accounting.
    let offline =
        stack_from_trace(&parsed, DeviceConfig::ddr4_2400(), cycles).expect("legal trace");
    println!("\nonline vs offline bandwidth stacks:");
    println!(
        "{}",
        ascii::bandwidth_chart(&[
            ("online".into(), online.stack()),
            ("offline".into(), offline.clone()),
        ])
    );
    println!(
        "achieved: online {:.3} GB/s, offline {:.3} GB/s (read/write/refresh match exactly; \
         constraint attribution is inferred from command timing alone)",
        online.stack().achieved_gbps(),
        offline.achieved_gbps()
    );
}
