//! Capacity planning with stack-based extrapolation (Section VIII-B):
//! predict the bandwidth of an 8-core deployment from a 1-core profile,
//! and compare with the naive linear model and the measured truth.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use dramstack::memctrl::{MappingScheme, PagePolicy};
use dramstack::sim::experiments::run_synthetic;
use dramstack::stacks::{extrapolate_stack, predict_bandwidth_naive, predict_bandwidth_stack};
use dramstack::workloads::SyntheticPattern;

fn main() {
    let us = 150.0;
    for (name, pattern) in [
        ("sequential", SyntheticPattern::sequential(0.0)),
        ("random", SyntheticPattern::random(0.0)),
        ("random w20", SyntheticPattern::random(0.2)),
    ] {
        // Profile on one core, sampled through time.
        let one = run_synthetic(
            1,
            pattern,
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            us,
        )
        .expect("paper configuration is valid");
        let samples: Vec<_> = one.samples.iter().map(|s| s.bandwidth.clone()).collect();

        // Extrapolate to 8 cores both ways.
        let naive = predict_bandwidth_naive(&samples, 8.0);
        let stack = predict_bandwidth_stack(&samples, 8.0);

        // Ground truth: actually simulate 8 cores.
        let eight = run_synthetic(
            8,
            pattern,
            PagePolicy::Open,
            MappingScheme::RowBankColumn,
            us,
        )
        .expect("paper configuration is valid");
        let measured = eight.achieved_gbps();

        println!("{name}:");
        println!("  1-core measured : {:6.2} GB/s", one.achieved_gbps());
        println!(
            "  naive 8c        : {naive:6.2} GB/s ({:+5.1} % error)",
            (naive / measured - 1.0) * 100.0
        );
        println!(
            "  stack 8c        : {stack:6.2} GB/s ({:+5.1} % error)",
            (stack / measured - 1.0) * 100.0
        );
        println!("  8-core measured : {measured:6.2} GB/s");

        // Show what the extrapolated stack looks like for the aggregate.
        let mut agg = samples[0].clone();
        for s in &samples[1..] {
            agg.merge(s);
        }
        let predicted = extrapolate_stack(&agg, 8.0);
        println!("  predicted 8c stack: read+write {:.2}, pre/act {:.2}, constraints {:.2}, idle {:.2}\n",
            predicted.achieved_gbps(),
            predicted.gbps(dramstack::stacks::BwComponent::Precharge)
                + predicted.gbps(dramstack::stacks::BwComponent::Activate),
            predicted.gbps(dramstack::stacks::BwComponent::Constraints),
            predicted.gbps(dramstack::stacks::BwComponent::Idle),
        );
    }
}
