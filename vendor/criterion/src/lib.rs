//! Offline drop-in subset of `criterion`.
//!
//! Supports the benchmark surface this workspace uses:
//! `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` with `throughput`/`bench_function`/`finish`,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark runs a short warm-up followed by `sample_size`
//! timed samples and prints the median per-iteration time (plus
//! throughput when configured). There is no statistical analysis or
//! HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a single benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-sample wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that makes a
        // sample take a measurable slice of time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2] / self.iters_per_sample.min(u64::from(u32::MAX)) as u32
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        iters_per_sample: 0,
    };
    f(&mut b);
    let per_iter = b.median_per_iter();
    let mut line = format!("bench {id:<40} {:>12}/iter", format_duration(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.2} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:.2} MiB/s",
                        n as f64 / secs / (1024.0 * 1024.0)
                    ));
                }
            }
        }
    }
    println!("{line}");
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream-compatibility no-op (reports are not generated).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
            iters_per_sample: 0,
        };
        b.iter(|| black_box(best_effort_work()));
        assert!(!b.samples.is_empty());
        assert!(b.iters_per_sample >= 1);
    }

    fn best_effort_work() -> u64 {
        (0..512u64).map(|x| x.wrapping_mul(x)).sum()
    }
}
