//! Offline drop-in subset of `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a small, self-contained replacement that supports
//! exactly the surface the dramstack crates use: `#[derive(Serialize,
//! Deserialize)]` on concrete (non-generic) structs and enums, routed
//! through a JSON-like [`Value`] data model that `serde_json` (also
//! vendored) renders and parses.
//!
//! The design intentionally trades serde's visitor architecture for a
//! simple value tree: `Serialize::to_value` builds a [`Value`], and
//! `Deserialize::from_value` reads one back. Round-tripping is exact for
//! every type in this workspace (floats print in shortest round-trip
//! form; integers up to `i128` are kept as integers).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-like data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers every Rust integer type up to `i128`).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this value is an object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this value is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric contents widened to `f64`, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric contents as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Looks up an element of an array by index.
    pub fn index(&self, i: usize) -> Option<&Value> {
        self.as_seq().and_then(|s| s.get(i))
    }
}

/// Error produced while converting a [`Value`] back into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Lowers `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches a required object field (helper for derived impls).
///
/// # Errors
///
/// Returns an error naming the missing `key` when absent.
pub fn get_field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, Error> {
    v.get(key)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Fetches a required array element (helper for derived tuple impls).
///
/// # Errors
///
/// Returns an error naming the missing index when absent.
pub fn get_index(v: &Value, i: usize) -> Result<&Value, Error> {
    v.index(i)
        .ok_or_else(|| Error::custom(format!("missing element {i}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i128::try_from(*self).expect("integer out of i128 range"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {n}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(get_index(v, $idx)?)?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u8, 2u16, 3u32);
        assert_eq!(<(u8, u16, u32)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = Some(9);
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn out_of_range_integer_is_an_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
        let s = Value::Seq(vec![Value::Bool(true)]);
        assert_eq!(s.index(0), Some(&Value::Bool(true)));
    }
}
