//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). Supports concrete (non-generic)
//! structs — named, tuple and unit — and enums whose variants are unit,
//! tuple or struct-like. That covers every derived type in this
//! workspace; anything fancier fails loudly with a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips `#[...]` attribute pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips `pub` / `pub(...)` visibility starting at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances past the rest of a field/variant up to (and past) its
/// separating top-level comma, tracking `<...>` depth so commas inside
/// generic arguments are not treated as separators.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts top-level comma-separated items in a group body (tuple fields).
fn count_items(tokens: &[TokenTree]) -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        n += 1;
        skip_to_comma(tokens, &mut i);
    }
    n
}

/// Extracts field names from a named-field group body.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
        i += 1;
        skip_to_comma(tokens, &mut i);
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantFields::Tuple(count_items(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantFields::Named(parse_named_fields(&inner)?)
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_to_comma(tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type {name} is not supported by the vendored derive"
            ));
        }
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::NamedStruct(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::TupleStruct(count_items(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Enum(parse_variants(&inner)?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok(Input { name, body })
}

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::get_field(v, {f:?})?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(::serde::get_index(v, {k})?)?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Body::UnitStruct => format!("Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = if *n == 1 {
                                vec!["::serde::Deserialize::from_value(payload)?".to_string()]
                            } else {
                                (0..*n)
                                    .map(|k| {
                                        format!(
                                            "::serde::Deserialize::from_value(::serde::get_index(payload, {k})?)?"
                                        )
                                    })
                                    .collect()
                            };
                            Some(format!("{vn:?} => Ok({name}::{vn}({})),", inits.join(", ")))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(payload, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{ {unit} _ => Err(::serde::Error::custom(format!(\"unknown variant {{s}} of {name}\"))) }}\n\
                 }} else if let Some(m) = v.as_map() {{\n\
                     let (tag, payload) = m.first().ok_or_else(|| ::serde::Error::custom(\"empty variant map for {name}\"))?;\n\
                     let _ = payload;\n\
                     match tag.as_str() {{ {data} other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))) }}\n\
                 }} else {{\n\
                     Err(::serde::Error::custom(\"expected string or map for enum {name}\"))\n\
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
