//! Offline drop-in subset of `serde_json`.
//!
//! Renders and parses JSON through the vendored `serde` [`Value`] data
//! model. Floats are printed with Rust's shortest round-trip `Display`,
//! so `to_string` → `from_str` is lossless for every finite `f64`;
//! non-finite floats serialize as `null` (as real serde_json does).

use std::fmt;

pub use serde::Value;

/// Error for both serialization and deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset into the input where a *parse* error occurred;
    /// `None` for shape-mismatch and serialization errors.
    byte: Option<usize>,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
            byte: None,
        }
    }

    fn at_byte(msg: impl fmt::Display, byte: usize) -> Self {
        Error {
            msg: msg.to_string(),
            byte: Some(byte),
        }
    }

    /// Byte offset of a parse error in the input text, when known.
    /// Callers can convert this to a line/column pair against the
    /// original source for diagnostics.
    pub fn byte_offset(&self) -> Option<usize> {
        self.byte
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.byte {
            Some(b) => write!(f, "JSON error: {} at byte {b}", self.msg),
            None => write!(f, "JSON error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization -----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() {
        // Keep integral floats recognizably floating-point ("1.0", not
        // "1") so the parser reconstructs the same `Value` variant.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_value(item, out, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match the target type.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v).map_err(Error::from)
}

// ---- parsing -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::at_byte(msg, self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected end of input or invalid value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(|e| self.err(e))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| self.err(e))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run of plain bytes up to the next
                    // quote or escape. The input started life as a
                    // `&str`, and both delimiters are ASCII, so the run
                    // never splits a UTF-8 sequence. (Validating from
                    // `self.pos` to the end per character instead turns
                    // parsing quadratic — fatal on multi-MB snapshots.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| self.err(e))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| self.err(e))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(e))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| self.err(e))
        }
    }
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_through_text() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [
            0.0f64,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            19.2,
            1e-300,
            123456789.123,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {s}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::Float(2.0);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\tе";
        let text = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string(&empty).unwrap(), "[]");
    }

    #[test]
    fn value_parses_nested_objects() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().index(1), Some(&Value::Float(2.5)));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
