//! Offline drop-in subset of `rand`.
//!
//! Provides the exact surface this workspace uses: `SmallRng` (an
//! xoshiro256++ generator), the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and [`SeedableRng::seed_from_u64`].
//! The stream differs from upstream `rand`, but every consumer in this
//! workspace only requires determinism for a fixed seed, which this
//! implementation guarantees.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                range.start.wrapping_add(r as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let f: f64 = Standard::sample(rng);
        range.start + f * (range.end - range.start)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (stream differs from the
    /// upstream `rand` SmallRng; determinism per seed is what matters
    /// here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing. Restoring
        /// via [`from_state`](Self::from_state) continues the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`state`](Self::state).
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::SmallRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_covers_it() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "poor coverage of [0,1)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }
}
