//! Offline drop-in subset of `proptest`.
//!
//! Implements the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), integer-range /
//! `any::<T>()` / `Just` / tuple / `prop::collection::vec` strategies,
//! `prop_map`, `prop_oneof!`, and the `prop_assert*` macros. There is no
//! shrinking: a failing case panics with its case number and the seed is
//! derived deterministically from the test name, so failures reproduce
//! exactly on re-run.

/// Test-runner configuration and error types.
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic generator driving value generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so every test
        /// gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u128) -> u128 {
            assert!(bound > 0, "empty range");
            (u128::from(self.next_u64()) << 64 | u128::from(self.next_u64())) % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given non-empty choice set.
        ///
        /// # Panics
        ///
        /// Panics if `choices` is empty.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.choices.len() as u128) as usize;
            self.choices[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t
                        * (1.0 / (1u64 << 53) as $t);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a value from the full domain of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: scaled from the unit interval.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit - 0.5) * 2e12
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector strategy: length uniform in `len`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u128;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec` works like upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    ( config = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)+) =
                    ( $( $crate::strategy::Strategy::generate(&($strat), &mut rng) ,)+ );
                let body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = body() {
                    panic!(
                        "proptest `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {{
        let choices = vec![
            $(
                {
                    let boxed: ::std::boxed::Box<
                        dyn $crate::strategy::Strategy<Value = _>,
                    > = ::std::boxed::Box::new($s);
                    boxed
                }
            ),+
        ];
        $crate::strategy::Union::new(choices)
    }};
}

/// Asserts a condition inside a property test (fails the case, does not
/// abort the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(1u8..=8), &mut rng);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn union_covers_all_choices() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::for_test("union");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_respects_length_range() {
        let s = prop::collection::vec(any::<u64>(), 2..5);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, (a, b) in (0u32..10, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(a < 10, "a was {a}");
            let _ = b;
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn mapped_strategies_compose(v in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
